//! Per-package calibration constants.
//!
//! The paper benchmarks closed-source/Fortran/C++ production codes whose
//! absolute speeds we cannot re-measure here. Each analog therefore
//! carries two documented constants calibrated against the paper's
//! *measured relative speeds* (Fig. 8): a per-pair-operation efficiency
//! factor (how many times more/less expensive one inner-loop iteration is
//! than our reference GB pair kernel) and a fixed startup/setup cost
//! (process launch, topology reading, parameter assignment — dominant for
//! small molecules, which is how GBr⁶/Tinker occasionally edge out Amber's
//! MPI startup, max speedups 1.14/2.1 in §V.C).
//!
//! EXPERIMENTS.md records how well the calibrated shapes match Fig. 8.

/// Efficiency factors and fixed overheads per package.
#[derive(Clone, Copy, Debug)]
pub struct PackageFactors {
    /// Amber 12: mature Fortran kernels, but GB in `sander` is known to be
    /// slow relative to nonbonded kernels; heavy MPI startup.
    pub amber_per_op: f64,
    pub amber_fixed: f64,
    /// Gromacs 4.5.3: the fastest nonbonded kernels of the era.
    pub gromacs_per_op: f64,
    pub gromacs_fixed: f64,
    /// NAMD 2.9: GB implemented over the full electrostatics path; the
    /// paper measured it by *differencing two runs*, inflating its cost.
    pub namd_per_op: f64,
    pub namd_fixed: f64,
    /// Tinker 6.0: interpreted-style Fortran loops, OpenMP.
    pub tinker_per_op: f64,
    pub tinker_fixed: f64,
    /// Tinker's OpenMP parallel efficiency (max speedup ≈ eff · p).
    pub tinker_omp_efficiency: f64,
    /// GBr⁶: serial quadratic volume integrals, several polynomial/pow
    /// evaluations per pair.
    pub gbr6_per_op: f64,
    pub gbr6_fixed: f64,
    /// Tinker's per-pair bookkeeping bytes (quadratic total memory —
    /// calibrated so the OOM threshold lands just above 12k atoms on the
    /// 24 GB Lonestar4 node, §V.D).
    pub tinker_bytes_per_pair: f64,
    /// GBr⁶'s per-pair bytes (OOM just above 13k atoms).
    pub gbr6_bytes_per_pair: f64,
}

impl Default for PackageFactors {
    fn default() -> Self {
        PackageFactors {
            amber_per_op: 4.1,
            amber_fixed: 0.45,
            gromacs_per_op: 2.1,
            gromacs_fixed: 0.06,
            namd_per_op: 6.0,
            namd_fixed: 0.42,
            tinker_per_op: 6.0,
            tinker_fixed: 0.20,
            tinker_omp_efficiency: 0.55,
            gbr6_per_op: 5.0,
            gbr6_fixed: 0.35,
            tinker_bytes_per_pair: 170.0,
            gbr6_bytes_per_pair: 145.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_positive() {
        let f = PackageFactors::default();
        for v in [
            f.amber_per_op,
            f.amber_fixed,
            f.gromacs_per_op,
            f.gromacs_fixed,
            f.namd_per_op,
            f.namd_fixed,
            f.tinker_per_op,
            f.tinker_fixed,
            f.tinker_omp_efficiency,
            f.gbr6_per_op,
            f.gbr6_fixed,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn oom_thresholds_land_where_the_paper_observed() {
        let f = PackageFactors::default();
        let dram = 24.0 * (1u64 << 30) as f64;
        // Tinker: fine at 12k, OOM by 12.7k.
        assert!(12_000.0f64.powi(2) * f.tinker_bytes_per_pair < dram);
        assert!(12_700.0f64.powi(2) * f.tinker_bytes_per_pair > dram);
        // GBr6: fine at 13k, OOM by 13.6k.
        assert!(13_000.0f64.powi(2) * f.gbr6_bytes_per_pair < dram);
        assert!(13_600.0f64.powi(2) * f.gbr6_bytes_per_pair > dram);
    }

    #[test]
    fn relative_kernel_speeds_ordered_as_measured() {
        // Gromacs fastest per-op, NAMD/Tinker/GBr6 slowest.
        let f = PackageFactors::default();
        assert!(f.gromacs_per_op < f.amber_per_op);
        assert!(f.amber_per_op < f.namd_per_op);
        assert!(f.amber_per_op < f.tinker_per_op);
        assert!(f.amber_per_op < f.gbr6_per_op);
    }
}
