//! Gromacs 4.5.3 analog: HCT Born radii + nblist GB energy, MPI, with the
//! era's fastest nonbonded kernels (Table II row 1).
//!
//! §IV.A notes Gromacs "also uses atom based work division techniques"
//! (its error drifts with P in the paper's observation); §V.C measured its
//! distributed build slightly faster than its shared-memory build, so the
//! comparison uses the MPI flavor, as we do here.

use crate::hct::{born_radii_hct, HCT_SCALE};
use crate::nblist::NbList;
use crate::package::{
    finish_energy, mpi_package_time, pairwise_epol_cutoff, GbPackage, PackageContext,
    PackageOutcome, PackageReport,
};
use polaroct_molecule::Molecule;

/// The Gromacs analog.
#[derive(Clone, Copy, Debug)]
pub struct Gromacs {
    /// Nonbonded cutoff (Å). Gromacs GB setups of the era used ~2 nm.
    pub cutoff: f64,
    /// Bytes per neighbor entry (tighter than Amber's).
    pub bytes_per_pair: usize,
}

impl Default for Gromacs {
    fn default() -> Self {
        Gromacs { cutoff: 20.0, bytes_per_pair: 24 }
    }
}

impl GbPackage for Gromacs {
    fn name(&self) -> &'static str {
        "Gromacs 4.5.3"
    }

    fn gb_model(&self) -> &'static str {
        "HCT"
    }

    fn parallelism(&self) -> &'static str {
        "Distributed (MPI)"
    }

    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome {
        // Coordinates are replicated per rank, but each rank only stores
        // the pairlist slice for its own atoms (atom-based division).
        let est_total = NbList::estimate_bytes(mol.len(), 0.06, self.cutoff, self.bytes_per_pair);
        let per_rank = mol.memory_bytes() + est_total / ctx.cluster.placement.processes;
        let node_need = per_rank * ctx.cluster.processes_per_node()
            + est_total.saturating_sub(est_total / ctx.cluster.placement.processes)
                / ctx.cluster.nodes().max(1);
        if node_need > ctx.cluster.machine.dram_per_node {
            return PackageOutcome::OutOfMemory {
                name: self.name(),
                required_bytes: node_need,
                node_bytes: ctx.cluster.machine.dram_per_node,
            };
        }
        let nb = NbList::build(mol, self.cutoff);
        let (born, ops_radii) = born_radii_hct(mol, &nb, HCT_SCALE);
        let (raw, _executed) = pairwise_epol_cutoff(mol, &nb, &born);
        // Gromacs 4.5's GB energy is also effectively all-vs-all (its GB
        // kernels predate the Verlet-cutoff scheme); the value is computed
        // at the cutoff (within ~2%), the time charged for M² pairs.
        let m = mol.len() as u64;
        let pair_ops = ops_radii + m * m;
        let mem =
            mol.memory_bytes() + nb.total_entries() * self.bytes_per_pair / ctx.cluster.placement.processes;
        let time = mpi_package_time(
            ctx,
            pair_ops,
            ctx.factors.gromacs_per_op,
            ctx.factors.gromacs_fixed,
            mem,
        );
        PackageOutcome::Ok(PackageReport {
            name: self.name(),
            energy_kcal: finish_energy(ctx, raw),
            time,
            pair_ops,
            memory_per_process: mem,
            cores: ctx.cluster.placement.total_cores(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amber::Amber;
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx() -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(12),
        ))
    }

    #[test]
    fn gromacs_beats_amber_on_twelve_cores() {
        // Fig. 8b: Gromacs is 2.7–6.2x faster than Amber on the suite.
        let mol = synth::protein("p", 2260, 3);
        let g = Gromacs::default().run(&mol, &ctx()).report().unwrap().time;
        let a = Amber::default().run(&mol, &ctx()).report().unwrap().time;
        let speedup = a / g;
        assert!(speedup > 1.5, "Gromacs/Amber speedup only {speedup}");
        assert!(speedup < 20.0, "speedup {speedup} implausibly large");
    }

    #[test]
    fn energy_matches_amber_class() {
        // Same GB model (HCT): energies should be close despite different
        // cutoffs.
        let mol = synth::protein("p", 600, 5);
        let g = Gromacs::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        let a = Amber::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        assert!(((g - a) / a).abs() < 0.05, "{g} vs {a}");
    }

    #[test]
    fn labels() {
        let g = Gromacs::default();
        assert_eq!(g.gb_model(), "HCT");
        assert_eq!(g.parallelism(), "Distributed (MPI)");
    }
}
