//! GBr⁶ analog: serial, parameterization-free volume-based r⁶ GB
//! (Tjong & Zhou 2007; Table II row 5).
//!
//! All-pairs quadratic volume integrals for the radii, all-pairs STILL
//! energy, no parallelism, and quadratic working arrays that hit the §V.D
//! memory wall just above 13k atoms on a 24 GB node.

use crate::package::{
    finish_energy, GbPackage, PackageContext, PackageOutcome, PackageReport,
};
use crate::volume_r6::born_radii_volume_r6;
use polaroct_core::gb::inv_f_gb;
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::Molecule;

/// The GBr⁶ analog (no tunables: the method is parameterization-free).
#[derive(Clone, Copy, Debug, Default)]
pub struct GBr6;

impl GbPackage for GBr6 {
    fn name(&self) -> &'static str {
        "GBr6"
    }

    fn gb_model(&self) -> &'static str {
        "STILL (volume r6)"
    }

    fn parallelism(&self) -> &'static str {
        "Serial"
    }

    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome {
        let m = mol.len() as f64;
        let quadratic = (m * m * ctx.factors.gbr6_bytes_per_pair) as usize;
        if quadratic > ctx.cluster.machine.dram_per_node {
            return PackageOutcome::OutOfMemory {
                name: self.name(),
                required_bytes: quadratic,
                node_bytes: ctx.cluster.machine.dram_per_node,
            };
        }
        let (born, ops_radii) = born_radii_volume_r6(mol);
        // All-pairs STILL energy (serial code, no cutoff machinery).
        let mut raw = 0.0;
        let n = mol.len();
        for i in 0..n {
            let (qi, ri) = (mol.charges[i], born[i]);
            raw += qi * qi / ri;
            // `j` indexes positions, charges, and born in parallel.
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..n {
                let r2 = mol.positions[i].dist2(mol.positions[j]);
                raw += 2.0 * qi * mol.charges[j] * inv_f_gb(r2, ri, born[j], MathMode::Exact);
            }
        }
        let ops_epol = (n * n) as u64;
        let pair_ops = ops_radii + ops_epol;
        let time = ctx.factors.gbr6_fixed
            + pair_ops as f64 * ctx.costs.epol_near * ctx.factors.gbr6_per_op;
        PackageOutcome::Ok(PackageReport {
            name: self.name(),
            energy_kcal: finish_energy(ctx, raw),
            time,
            pair_ops,
            memory_per_process: quadratic,
            cores: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx() -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(1),
        ))
    }

    #[test]
    fn serial_run_reports_one_core() {
        let mol = synth::protein("p", 300, 3);
        let r = GBr6.run(&mol, &ctx()).report().unwrap().clone();
        assert_eq!(r.cores, 1);
        assert!(r.energy_kcal < 0.0);
        assert_eq!(r.pair_ops, 300 * 299 + 300 * 300);
    }

    #[test]
    fn oom_threshold_above_13k() {
        let f = ctx().factors;
        let dram = MachineSpec::lonestar4().dram_per_node;
        assert!((13_000f64.powi(2) * f.gbr6_bytes_per_pair) as usize <= dram);
        assert!((13_600f64.powi(2) * f.gbr6_bytes_per_pair) as usize > dram);
    }

    #[test]
    fn energy_in_the_exact_family_ballpark() {
        // Volume-r6 vs HCT (Amber analog): same physical quantity, the
        // models should land within tens of percent.
        let mol = synth::protein("p", 400, 7);
        let g = GBr6.run(&mol, &ctx()).report().unwrap().energy_kcal;
        let actx = PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(12),
        ));
        let a = crate::amber::Amber::default().run(&mol, &actx).report().unwrap().energy_kcal;
        let ratio = g / a;
        assert!((0.4..2.0).contains(&ratio), "GBr6 {g} vs Amber {a} (ratio {ratio})");
    }
}
