//! Volume-based r⁶ Born radii — the GBr⁶ method (Tjong & Zhou 2007).
//!
//! §III: "GBr⁶ has a serial approximation algorithm that uses volume-based
//! r⁶-approximation of Born radii as opposed to our surface-based
//! r⁶-approximation."
//!
//! Instead of a surface integral, GBr⁶ starts from the whole-space
//! identity and subtracts an analytic volume integral of `1/s⁶` over each
//! neighboring atom's sphere:
//!
//! ```text
//! 1/R_i³ = 1/ρ_i³ − (3/4π) Σ_{j≠i} ∫_{ball(x_j, a_j)} ds / |s − x_i|⁶
//! ```
//!
//! For a non-overlapping ball of radius `a` at center distance `d`, the
//! integral has the closed form derived below (exact; verified against
//! Monte-Carlo in the tests). Overlapping neighbors are handled by the
//! usual clamp of the near integration limit to the solute radius.

use polaroct_molecule::Molecule;

/// Scaling applied to descreener radii, compensating the double counting
/// of overlapping neighbor volumes (pairwise descreening counts shared
/// volume once per neighbor). Same role as HCT's S ≈ 0.8; calibrated so
/// GBr⁶ energies track the exact surface-r⁶ reference on the suite
/// (Fig. 9's "match closely").
pub const VOLUME_DESCREEN_SCALE: f64 = 0.80;

/// Exact `∫ ds / |s|⁶` over a ball of radius `a` centered at distance `d`
/// from the field point, for `d > a` (non-overlapping).
///
/// Derivation (spherical coordinates about the ball center, `t` = radius
/// inside the ball):
/// `I = (π/2d) ∫₀ᵃ t [ (d−t)⁻⁴ − (d+t)⁻⁴ ] dt`. With `w = d−t`
/// (`dt = −dw`), `∫ t(d−t)⁻⁴ dt = [d/(3w³) − 1/(2w²)]` evaluated at
/// `w = d−a` minus at `w = d`; with `w = d+t`,
/// `∫ t(d+t)⁻⁴ dt = [d/(3w³) − 1/(2w²)]` at `w = d+a` minus at `w = d`
/// — the same antiderivative, by symmetry of the two substitutions.
pub fn ball_r6_integral(a: f64, d: f64) -> f64 {
    assert!(a > 0.0 && d > a, "non-overlapping case requires d > a");
    let anti = |w: f64| d / (3.0 * w * w * w) - 1.0 / (2.0 * w * w);
    let term1 = anti(d - a) - anti(d);
    let term2 = anti(d + a) - anti(d);
    std::f64::consts::PI / (2.0 * d) * (term1 - term2)
}

/// Closed form of the same integral when the ball overlaps the solute
/// sphere of radius `rho` (`d − a < rho < d`): the core `t ∈ [0, d−ρ]`
/// integrates exactly; for the shell `t ∈ (d−ρ, a]` the near-side factor
/// `(d−t)⁻⁴` is saturated at `ρ⁻⁴` (every point there is within `ρ` of
/// the boundary on the near side).
pub fn ball_r6_integral_saturated(a: f64, d: f64, rho: f64) -> f64 {
    debug_assert!(d > rho && d - a < rho);
    let t0 = (d - rho).max(0.0);
    let anti = |w: f64| d / (3.0 * w * w * w) - 1.0 / (2.0 * w * w);
    // Exact core 0..t0 (both substitution halves).
    let core = if t0 > 0.0 {
        let term1 = anti(d - t0) - anti(d);
        let term2 = anti(d + t0) - anti(d);
        std::f64::consts::PI / (2.0 * d) * (term1 - term2)
    } else {
        0.0
    };
    // Saturated shell t0..a: (π/2d) ∫ t [ρ⁻⁴ − (d+t)⁻⁴] dt.
    let inv_rho4 = 1.0 / (rho * rho * rho * rho);
    let near = inv_rho4 * (a * a - t0 * t0) / 2.0;
    let far = (anti(d + a) - anti(d + t0)).max(0.0);
    let shell = std::f64::consts::PI / (2.0 * d) * (near - far);
    core + shell.max(0.0)
}

/// Volume-r⁶ Born radii, all-pairs (GBr⁶ is a serial quadratic method).
/// Overlapping neighbor spheres use the saturated closed form.
/// Returns radii and pair-op count.
pub fn born_radii_volume_r6(mol: &Molecule) -> (Vec<f64>, u64) {
    let m = mol.len();
    let mut ops = 0u64;
    let three_over_4pi = 3.0 / (4.0 * std::f64::consts::PI);
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let rho = mol.radii[i];
        let mut inv_r3 = 1.0 / (rho * rho * rho);
        for j in 0..m {
            if j == i {
                continue;
            }
            ops += 1;
            let d = mol.positions[i].dist(mol.positions[j]);
            let a = mol.radii[j] * VOLUME_DESCREEN_SCALE;
            if d <= rho {
                // Neighbor center inside the solute sphere: its exterior
                // sliver contributes negligibly.
                continue;
            }
            let integral = if d - a >= rho {
                ball_r6_integral(a, d)
            } else {
                // Overlapping: integrate the non-overlapping core exactly
                // and saturate the near-side kernel at the solute surface
                // for the overlapping shell (|s| >= ρ there).
                ball_r6_integral_saturated(a, d, rho)
            };
            inv_r3 -= three_over_4pi * integral;
        }
        let r = if inv_r3 <= 0.0 {
            crate::package::BORN_MAX
        } else {
            inv_r3.powf(-1.0 / 3.0)
        };
        out.push(r.clamp(rho, crate::package::BORN_MAX));
    }
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_geom::Vec3;
    use polaroct_molecule::{synth, Atom, Element, Molecule};

    #[test]
    fn ball_integral_matches_monte_carlo() {
        // Deterministic quasi-MC over the ball, compared to closed form.
        let (a, d) = (1.5, 4.0);
        let exact = ball_r6_integral(a, d);
        let n = 200_000;
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for _ in 0..n {
            let p = Vec3::new(next(), next(), next()) * a;
            if p.norm2() <= a * a {
                let dist2 = (p - Vec3::new(d, 0.0, 0.0)).norm2();
                sum += 1.0 / (dist2 * dist2 * dist2);
                count += 1;
            }
        }
        let vol = (2.0 * a).powi(3) * count as f64 / n as f64;
        let mc = sum / count as f64 * vol;
        assert!(
            ((mc - exact) / exact).abs() < 0.02,
            "MC {mc} vs closed form {exact}"
        );
    }

    #[test]
    fn ball_integral_far_field_limit() {
        // d >> a: I → (4/3)πa³ / d⁶.
        let (a, d) = (1.0, 100.0);
        let exact = ball_r6_integral(a, d);
        let limit = 4.0 / 3.0 * std::f64::consts::PI * a.powi(3) / d.powi(6);
        assert!(((exact - limit) / limit).abs() < 1e-3);
    }

    #[test]
    fn isolated_atom_keeps_intrinsic_radius() {
        let mol = Molecule::from_atoms(
            "one",
            [Atom { pos: Vec3::ZERO, radius: 1.6, charge: 0.0, element: Element::C }],
        );
        let (r, ops) = born_radii_volume_r6(&mol);
        assert!((r[0] - 1.6).abs() < 1e-12);
        assert_eq!(ops, 0);
    }

    #[test]
    fn neighbors_increase_radius() {
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom { pos: Vec3::ZERO, radius: 1.7, charge: 0.0, element: Element::C },
                Atom {
                    pos: Vec3::new(4.0, 0.0, 0.0),
                    radius: 1.7,
                    charge: 0.0,
                    element: Element::C,
                },
            ],
        );
        let (r, _) = born_radii_volume_r6(&mol);
        assert!(r[0] > 1.7);
        assert!((r[0] - r[1]).abs() < 1e-12);
    }

    #[test]
    fn agrees_roughly_with_burial_ordering() {
        // Median (not mean) per quartile: a few deeply buried atoms have
        // near-singular 1/R³ and their huge radii would dominate a mean,
        // turning the comparison into a coin flip. 1000 atoms so the
        // globule actually has a buried core (a 250-atom coil need not).
        let mol = synth::protein("p", 1000, 3);
        let (r, _) = born_radii_volume_r6(&mol);
        let c = mol.centroid();
        let mut pairs: Vec<(f64, f64)> =
            mol.positions.iter().map(|p| p.dist(c)).zip(r.iter().copied()).collect();
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
        let q = pairs.len() / 4;
        let median = |xs: &[(f64, f64)]| {
            let mut v: Vec<f64> = xs.iter().map(|x| x.1).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let inner = median(&pairs[..q]);
        let outer = median(&pairs[pairs.len() - q..]);
        assert!(inner > outer, "buried median {inner} !> exposed median {outer}");
    }

    #[test]
    #[should_panic]
    fn overlapping_closed_form_rejected() {
        let _ = ball_r6_integral(2.0, 1.0);
    }
}
