//! Nonbonded lists — the data structure the paper argues octrees beat.
//!
//! §II: "The size of the nblist of any given atom grows linearly with the
//! number of atoms in the system, and cubically with the distance cutoff
//! ... Often MD implementations that use nblists run out of memory for
//! molecules with millions of atoms."
//!
//! This is a classic cell-list-constructed Verlet neighbor list: for every
//! atom, the indices of all atoms within `cutoff`. Construction is
//! `O(M · n_neigh)`; storage is `O(M · n_neigh)` where
//! `n_neigh ∝ cutoff³ · density` — the cubic growth.

use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;
use polaroct_surface::CellList;

/// A built neighbor list in CSR form.
#[derive(Clone, Debug)]
pub struct NbList {
    /// `starts[i]..starts[i+1]` indexes `neighbors` for atom `i`.
    pub starts: Vec<u32>,
    /// Neighbor atom indices (excluding self), unordered within an atom.
    pub neighbors: Vec<u32>,
    /// The cutoff the list was built for.
    pub cutoff: f64,
}

impl NbList {
    /// Build the list for `mol` with the given `cutoff` (Å).
    pub fn build(mol: &Molecule, cutoff: f64) -> NbList {
        assert!(cutoff > 0.0);
        assert!(!mol.is_empty());
        let cells = CellList::new(&mol.positions, cutoff);
        let c2 = cutoff * cutoff;
        let m = mol.len();
        let mut starts = Vec::with_capacity(m + 1);
        let mut neighbors: Vec<u32> = Vec::new();
        starts.push(0u32);
        for i in 0..m {
            let pi: Vec3 = mol.positions[i];
            cells.for_neighbors(pi, cutoff, |j| {
                if j as usize != i && pi.dist2(mol.positions[j as usize]) <= c2 {
                    neighbors.push(j);
                }
            });
            starts.push(neighbors.len() as u32);
        }
        NbList { starts, neighbors, cutoff }
    }

    /// Estimate the bytes a build would take *without* building it (used
    /// for out-of-memory checks before committing to an allocation).
    /// `density` in atoms/Å³; `bytes_per_pair` models per-entry bookkeeping
    /// (index + distances + exclusion flags in real MD codes).
    pub fn estimate_bytes(
        n_atoms: usize,
        density: f64,
        cutoff: f64,
        bytes_per_pair: usize,
    ) -> usize {
        let neigh_per_atom = 4.0 / 3.0 * std::f64::consts::PI * cutoff.powi(3) * density;
        (n_atoms as f64 * neigh_per_atom) as usize * bytes_per_pair + n_atoms * 4
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of atom `i`.
    #[inline]
    pub fn of(&self, i: usize) -> &[u32] {
        &self.neighbors[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Total stored pairs (each unordered pair appears twice).
    pub fn total_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Actual heap bytes of this (index-only) representation.
    pub fn memory_bytes(&self) -> usize {
        self.starts.len() * 4 + self.neighbors.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::synth;

    #[test]
    fn list_matches_brute_force() {
        let mol = synth::protein("p", 300, 3);
        let cutoff = 6.0;
        let nb = NbList::build(&mol, cutoff);
        let c2 = cutoff * cutoff;
        for i in 0..mol.len() {
            let mut brute: Vec<u32> = (0..mol.len() as u32)
                .filter(|&j| {
                    j as usize != i && mol.positions[i].dist2(mol.positions[j as usize]) <= c2
                })
                .collect();
            let mut got = nb.of(i).to_vec();
            brute.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, brute, "atom {i}");
        }
    }

    #[test]
    fn symmetry_every_pair_twice() {
        let mol = synth::protein("p", 200, 7);
        let nb = NbList::build(&mol, 8.0);
        for i in 0..mol.len() {
            for &j in nb.of(i) {
                assert!(nb.of(j as usize).contains(&(i as u32)), "pair ({i},{j}) asymmetric");
            }
        }
        assert_eq!(nb.total_entries() % 2, 0);
    }

    #[test]
    fn memory_grows_cubically_with_cutoff() {
        // The paper's core complaint about nblists.
        let mol = synth::protein("p", 2000, 5);
        let m4 = NbList::build(&mol, 4.0).total_entries() as f64;
        let m8 = NbList::build(&mol, 8.0).total_entries() as f64;
        let ratio = m8 / m4;
        // Doubling the cutoff should multiply entries by ~8 (interior
        // atoms; boundary effects soften it).
        assert!(ratio > 4.0, "cutoff doubling only scaled entries by {ratio}");
    }

    #[test]
    fn estimate_tracks_actual_scaling() {
        let density = 0.06;
        let e4 = NbList::estimate_bytes(1000, density, 4.0, 4);
        let e8 = NbList::estimate_bytes(1000, density, 8.0, 4);
        assert!((e8 as f64 / e4 as f64 - 8.0).abs() < 0.5);
    }

    #[test]
    fn octree_vs_nblist_space_story() {
        // At a large cutoff the nblist dwarfs an octree's O(M) footprint.
        let mol = synth::protein("p", 1500, 9);
        let nb = NbList::build(&mol, 16.0);
        let tree = polaroct_octree::build(&mol.positions, Default::default());
        assert!(
            nb.memory_bytes() > 5 * tree.memory_bytes(),
            "nblist {}B vs octree {}B",
            nb.memory_bytes(),
            tree.memory_bytes()
        );
    }

    #[test]
    fn isolated_atoms_have_empty_lists() {
        use polaroct_geom::Vec3;
        use polaroct_molecule::{Atom, Element, Molecule};
        let mol = Molecule::from_atoms(
            "two",
            [
                Atom::of_element(Element::C, Vec3::ZERO, 0.0),
                Atom::of_element(Element::C, Vec3::new(100.0, 0.0, 0.0), 0.0),
            ],
        );
        let nb = NbList::build(&mol, 5.0);
        assert!(nb.of(0).is_empty());
        assert!(nb.of(1).is_empty());
    }
}
