//! Amber 12 analog: HCT Born radii + nblist GB energy, MPI-distributed
//! with fully replicated data (Table II row 3).
//!
//! Amber's `sander`/`pmemd` GB path evaluates effective radii with HCT
//! pairwise descreening inside `rgbmax`, and GB pair energies inside the
//! nonbonded cutoff. Footnote 6 of the paper: "At present, Amber does not
//! support concurrent execution of more than 256 cores" — enforced here.

use crate::calib::PackageFactors;
use crate::hct::{born_radii_hct_stream, HCT_SCALE};
use crate::package::{
    finish_energy, mpi_package_time, pairwise_epol_cells, GbPackage, PackageContext,
    PackageOutcome, PackageReport,
};
use polaroct_molecule::Molecule;

/// The Amber analog.
///
/// Two faithful quirks of `sander`'s GB path:
///
/// * **No stored pairlist** — GB pairs are streamed and recomputed every
///   evaluation (which is why Amber, unlike Gromacs/NAMD/Tinker, never
///   hits the §V.D memory wall and could run CMV in the paper). We stream
///   out of a cell list and keep only O(M) memory.
/// * **Effectively uncut GB energy** — Amber's GB defaults (`cut=9999`)
///   evaluate all M² energy pairs; only the radii use `rgbmax ≈ 25 Å`.
///   Executing 2.6·10¹¹ pair kernels for a CMV-sized shell is infeasible
///   on the build host, so the energy *value* is computed with `cutoff`
///   (within ~2% of uncut — Fig. 11 reports Amber itself at 2.2% from
///   naive) while the *time* is charged for the true M² op count.
#[derive(Clone, Copy, Debug)]
pub struct Amber {
    /// Radii/energy evaluation cutoff (Å), Amber's `rgbmax` default.
    pub cutoff: f64,
}

impl Default for Amber {
    fn default() -> Self {
        Amber { cutoff: 25.0 }
    }
}

/// Amber's documented core-count ceiling (paper footnote 6).
pub const AMBER_MAX_CORES: usize = 256;

impl GbPackage for Amber {
    fn name(&self) -> &'static str {
        "Amber 12"
    }

    fn gb_model(&self) -> &'static str {
        "HCT"
    }

    fn parallelism(&self) -> &'static str {
        "Distributed (MPI)"
    }

    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome {
        assert!(
            ctx.cluster.placement.total_cores() <= AMBER_MAX_CORES,
            "Amber 12 does not support more than {AMBER_MAX_CORES} cores"
        );
        let f: &PackageFactors = &ctx.factors;
        // Streaming pairs: memory is just the replicated molecule + cell
        // index, O(M) — Amber fits wherever the data fits.
        let mem = 2 * mol.memory_bytes();
        let node_need = mem * ctx.cluster.processes_per_node();
        if node_need > ctx.cluster.machine.dram_per_node {
            return PackageOutcome::OutOfMemory {
                name: self.name(),
                required_bytes: node_need,
                node_bytes: ctx.cluster.machine.dram_per_node,
            };
        }

        let (born, ops_radii) = born_radii_hct_stream(mol, self.cutoff, HCT_SCALE);
        let (raw, _executed) = pairwise_epol_cells(mol, self.cutoff, &born);
        // Charge the true uncut GB-energy cost: all ordered pairs.
        let m = mol.len() as u64;
        let pair_ops = ops_radii + m * m;
        let time = mpi_package_time(ctx, pair_ops, f.amber_per_op, f.amber_fixed, mem);

        PackageOutcome::Ok(PackageReport {
            name: self.name(),
            energy_kcal: finish_energy(ctx, raw),
            time,
            pair_ops,
            memory_per_process: mem,
            cores: ctx.cluster.placement.total_cores(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx(cores: usize) -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(cores),
        ))
    }

    #[test]
    fn runs_and_reports_negative_energy() {
        let mol = synth::protein("p", 400, 3);
        let out = Amber::default().run(&mol, &ctx(12));
        let r = out.report().expect("should fit in memory");
        assert!(r.energy_kcal < 0.0);
        assert!(r.time > 0.0);
        assert!(r.pair_ops > 0);
        assert_eq!(r.cores, 12);
    }

    #[test]
    fn more_ranks_run_faster() {
        let mol = synth::protein("p", 3000, 5);
        let t1 = Amber::default().run(&mol, &ctx(1)).report().unwrap().time;
        let t12 = Amber::default().run(&mol, &ctx(12)).report().unwrap().time;
        assert!(t12 < t1);
    }

    #[test]
    #[should_panic]
    fn rejects_more_than_256_cores() {
        let mol = synth::protein("p", 100, 1);
        let _ = Amber::default().run(&mol, &ctx(300));
    }

    #[test]
    fn energy_close_to_exact_gb_for_default_cutoff() {
        // Amber's 25 Å cutoff keeps the energy within a few % of the
        // all-pairs HCT energy (the Fig. 9 "match closely" claim).
        let mol = synth::protein("p", 500, 7);
        // 60 Å covers every pair of a 500-atom globule (diameter ~30 Å)
        // while keeping the nblist memory estimate sane.
        let big = Amber { cutoff: 60.0 };
        let e_cut = Amber::default().run(&mol, &ctx(12)).report().unwrap().energy_kcal;
        let e_all = big.run(&mol, &ctx(12)).report().unwrap().energy_kcal;
        assert!(((e_cut - e_all) / e_all).abs() < 0.05, "{e_cut} vs {e_all}");
    }
}
