//! # polaroct-baselines
//!
//! From-scratch Rust analogs of the five packages the paper compares
//! against (Table II):
//!
//! | Package | GB model | Parallelism | Analog |
//! |---|---|---|---|
//! | Amber 12 | HCT | Distributed (MPI) | [`amber::Amber`] |
//! | Gromacs 4.5.3 | HCT | Distributed (MPI) | [`gromacs::Gromacs`] |
//! | NAMD 2.9 | OBC | Distributed (MPI) | [`namd::Namd`] |
//! | Tinker 6.0 | STILL | Shared (OpenMP) | [`tinker::Tinker`] |
//! | GBr⁶ | volume r⁶ | Serial | [`gbr6::GBr6`] |
//!
//! Each analog implements the package's *algorithm class* — its Born-radius
//! model ([`hct`], [`obc`], [`volume_r6`]), its **nonbonded-list** inner
//! loop ([`nblist`], whose memory grows cubically with the cutoff — the
//! paper's §II octree-vs-nblist comparison), its parallelization style,
//! and a per-package efficiency factor ([`calib`]) calibrated so the
//!12-core relative speeds land where the paper measured them (Fig. 8b).
//! Energies are computed for real by the respective GB formulas; times are
//! op counts × calibrated costs, like the octree drivers.
//!
//! The [`package::GbPackage`] trait gives the figure harnesses one
//! interface over all of them, including out-of-memory outcomes (§V.D:
//! Tinker and GBr⁶ "do not work for larger molecules (> 12k and > 13k
//! respectively) as they run out of memory").

#![forbid(unsafe_code)]

pub mod amber;
pub mod calib;
pub mod gbr6;
pub mod gromacs;
pub mod hct;
pub mod namd;
pub mod nblist;
pub mod obc;
pub mod package;
pub mod tinker;
pub mod volume_r6;

pub use calib::PackageFactors;
pub use nblist::NbList;
pub use package::{GbPackage, PackageContext, PackageOutcome, PackageReport};

/// All five package analogs, boxed behind the common trait, in the
/// paper's Table II order.
pub fn all_packages() -> Vec<Box<dyn package::GbPackage>> {
    vec![
        Box::new(gromacs::Gromacs::default()),
        Box::new(namd::Namd::default()),
        Box::new(amber::Amber::default()),
        Box::new(tinker::Tinker::default()),
        Box::new(gbr6::GBr6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_packages_lists_five() {
        let pkgs = all_packages();
        assert_eq!(pkgs.len(), 5);
        let names: Vec<&str> = pkgs.iter().map(|p| p.name()).collect();
        assert!(names.contains(&"Amber 12"));
        assert!(names.contains(&"GBr6"));
    }
}
