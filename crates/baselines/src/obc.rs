//! OBC (Onufriev–Bashford–Case 2004) Born radii — NAMD 2.9's GB model
//! (Table II).
//!
//! OBC reuses the HCT descreening sum `Ψ` but maps it through a tanh
//! rescaling that keeps deeply buried atoms' radii finite and smooth:
//!
//! ```text
//! Ψ   = ρ̃_i · Σ_j ½ H(r_ij, S_j ρ_j)
//! 1/R = 1/ρ̃_i − tanh(αΨ − βΨ² + γΨ³) / ρ_i
//! ```
//!
//! with the published constants α = 1.0, β = 0.8, γ = 4.85 (OBC-II).

use crate::hct::{descreen_integral, HCT_OFFSET, HCT_SCALE};
use crate::nblist::NbList;
use polaroct_molecule::Molecule;

pub const OBC_ALPHA: f64 = 1.0;
pub const OBC_BETA: f64 = 0.8;
pub const OBC_GAMMA: f64 = 4.85;

/// OBC-II Born radii over an nblist. Returns radii and pair-op count.
pub fn born_radii_obc(mol: &Molecule, nb: &NbList) -> (Vec<f64>, u64) {
    let m = mol.len();
    let mut ops = 0u64;
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let rho = mol.radii[i];
        let rho_t = (rho - HCT_OFFSET).max(0.5);
        let mut sum = 0.0;
        for &j in nb.of(i) {
            let j = j as usize;
            let r = mol.positions[i].dist(mol.positions[j]);
            let s = HCT_SCALE * (mol.radii[j] - HCT_OFFSET).max(0.5);
            sum += 0.5 * descreen_integral(rho_t, r, s);
            ops += 1;
        }
        let psi = rho_t * sum;
        let inv_r =
            1.0 / rho_t - (OBC_ALPHA * psi - OBC_BETA * psi * psi + OBC_GAMMA * psi.powi(3)).tanh() / rho;
        let r = if inv_r <= 1e-6 { crate::package::BORN_MAX } else { 1.0 / inv_r };
        out.push(r.clamp(rho_t, crate::package::BORN_MAX));
    }
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_geom::Vec3;
    use polaroct_molecule::{synth, Atom, Element, Molecule};

    #[test]
    fn isolated_atom() {
        let mol = Molecule::from_atoms(
            "one",
            [Atom { pos: Vec3::ZERO, radius: 1.7, charge: 0.0, element: Element::C }],
        );
        let nb = NbList::build(&mol, 10.0);
        let (r, _) = born_radii_obc(&mol, &nb);
        // Ψ = 0 ⇒ tanh(0) = 0 ⇒ R = ρ̃.
        assert!((r[0] - (1.7 - HCT_OFFSET)).abs() < 1e-12);
    }

    #[test]
    fn radii_bounded_even_for_dense_packing() {
        // The tanh rescaling caps 1/R reduction: R stays finite/positive
        // no matter how many descreeners pile up.
        let atoms: Vec<_> = (0..60)
            .map(|k| Atom {
                pos: Vec3::new((k % 4) as f64 * 1.8, ((k / 4) % 4) as f64 * 1.8, (k / 16) as f64 * 1.8),
                radius: 1.7,
                charge: 0.0,
                element: Element::C,
            })
            .collect();
        let mol = Molecule::from_atoms("dense", atoms);
        let nb = NbList::build(&mol, 12.0);
        let (r, _) = born_radii_obc(&mol, &nb);
        for &ri in &r {
            assert!(ri.is_finite() && ri > 0.0);
        }
    }

    #[test]
    fn obc_radii_exceed_hct_for_buried_atoms() {
        // The tanh mapping was designed because HCT *underestimates*
        // buried radii; OBC radii should be >= HCT radii on average.
        let mol = synth::protein("p", 300, 5);
        let nb = NbList::build(&mol, 12.0);
        let (hct, _) = crate::hct::born_radii_hct(&mol, &nb, HCT_SCALE);
        let (obc, _) = born_radii_obc(&mol, &nb);
        let mean_h: f64 = hct.iter().sum::<f64>() / hct.len() as f64;
        let mean_o: f64 = obc.iter().sum::<f64>() / obc.len() as f64;
        // Not a strict theorem for every atom, but holds in aggregate for
        // packed structures.
        assert!(mean_o > 0.5 * mean_h, "OBC mean {mean_o} vs HCT mean {mean_h}");
    }

    #[test]
    fn op_count_matches_list_size() {
        let mol = synth::protein("p", 150, 9);
        let nb = NbList::build(&mol, 8.0);
        let (_, ops) = born_radii_obc(&mol, &nb);
        assert_eq!(ops, nb.total_entries() as u64);
    }
}
