//! NAMD 2.9 analog: OBC Born radii + nblist GB energy, MPI/Charm++
//! (Table II row 2).
//!
//! §V.C: "For NAMD we were not able to find any way to compute only the
//! GB-energy. So, we first computed the total electrostatic potential with
//! GB energy turned on, and then computed the electrostatic energy with GB
//! energy turned off, and took the difference" — i.e. the paper's NAMD
//! timing includes two full electrostatics evaluations, which is folded
//! into `namd_per_op` in [`crate::calib`].

use crate::nblist::NbList;
use crate::obc::born_radii_obc;
use crate::package::{
    finish_energy, mpi_package_time, pairwise_epol_cutoff, GbPackage, PackageContext,
    PackageOutcome, PackageReport,
};
use polaroct_molecule::Molecule;

/// The NAMD analog.
#[derive(Clone, Copy, Debug)]
pub struct Namd {
    /// Pairlist cutoff (Å).
    pub cutoff: f64,
    pub bytes_per_pair: usize,
}

impl Default for Namd {
    fn default() -> Self {
        Namd { cutoff: 24.0, bytes_per_pair: 48 }
    }
}

impl GbPackage for Namd {
    fn name(&self) -> &'static str {
        "NAMD 2.9"
    }

    fn gb_model(&self) -> &'static str {
        "OBC"
    }

    fn parallelism(&self) -> &'static str {
        "Distributed (MPI)"
    }

    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome {
        // Coordinates are replicated per rank, but each rank only stores
        // the pairlist slice for its own atoms (atom-based division).
        let est_total = NbList::estimate_bytes(mol.len(), 0.06, self.cutoff, self.bytes_per_pair);
        let per_rank = mol.memory_bytes() + est_total / ctx.cluster.placement.processes;
        let node_need = per_rank * ctx.cluster.processes_per_node()
            + est_total.saturating_sub(est_total / ctx.cluster.placement.processes)
                / ctx.cluster.nodes().max(1);
        if node_need > ctx.cluster.machine.dram_per_node {
            return PackageOutcome::OutOfMemory {
                name: self.name(),
                required_bytes: node_need,
                node_bytes: ctx.cluster.machine.dram_per_node,
            };
        }
        let nb = NbList::build(mol, self.cutoff);
        let (born, ops_radii) = born_radii_obc(mol, &nb);
        let (raw, _executed) = pairwise_epol_cutoff(mol, &nb, &born);
        // Charged as all ordered pairs (and the paper measured NAMD by
        // differencing two full electrostatics runs — folded into
        // `namd_per_op`).
        let m = mol.len() as u64;
        let pair_ops = ops_radii + m * m;
        let mem =
            mol.memory_bytes() + nb.total_entries() * self.bytes_per_pair / ctx.cluster.placement.processes;
        let time =
            mpi_package_time(ctx, pair_ops, ctx.factors.namd_per_op, ctx.factors.namd_fixed, mem);
        PackageOutcome::Ok(PackageReport {
            name: self.name(),
            energy_kcal: finish_energy(ctx, raw),
            time,
            pair_ops,
            memory_per_process: mem,
            cores: ctx.cluster.placement.total_cores(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amber::Amber;
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx() -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(12),
        ))
    }

    #[test]
    fn namd_is_slower_than_amber() {
        // Fig. 8: "Amber was ... faster than NAMD, Tinker and GBr6".
        // At small sizes their fixed costs tie (NAMD's best case — the
        // paper's 1.1x); the per-op gap decides once M² work dominates.
        let mol = synth::protein("p", 8000, 3);
        let n = Namd::default().run(&mol, &ctx()).report().unwrap().time;
        let a = Amber::default().run(&mol, &ctx()).report().unwrap().time;
        assert!(n > a, "NAMD {n} should exceed Amber {a}");
    }

    #[test]
    fn obc_energy_same_ballpark_as_hct() {
        let mol = synth::protein("p", 500, 5);
        let n = Namd::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        let a = Amber::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        assert!(n < 0.0);
        // Different GB models: allow a wider band, but same magnitude.
        assert!((n / a) > 0.5 && (n / a) < 2.0, "NAMD {n} vs Amber {a}");
    }
}
