//! Tinker 6.0 analog: STILL GB, OpenMP shared memory (Table II row 4).
//!
//! Two measured behaviors to reproduce:
//!
//! * Fig. 9: "Energy values reported by Tinker were around 70% of the
//!   naive energy." Tinker's STILL parameterization (Still et al. 1990
//!   empirical volume terms) systematically *overestimates* effective Born
//!   radii relative to the r⁶/HCT families; since the dominant self terms
//!   scale as `q²/R`, radii inflated by ~1.45× yield |E| ≈ 0.69·|E_exact|.
//!   We model the STILL radii as HCT radii × [`Tinker::still_radius_inflation`].
//! * §V.D: "Tinker ... do[es] not work for larger molecules (> 12k ...)
//!   as they run out of memory" — Tinker 6 allocates several static
//!   quadratic arrays for its pairwise terms; modeled as
//!   `bytes ≈ tinker_bytes_per_pair · M²` (calibrated in `calib`).

use crate::hct::{born_radii_hct, HCT_SCALE};
use crate::nblist::NbList;
use crate::package::{
    finish_energy, pairwise_epol_cutoff, shared_package_time, GbPackage, PackageContext,
    PackageOutcome, PackageReport, BORN_MAX,
};
use polaroct_molecule::Molecule;

/// The Tinker analog.
#[derive(Clone, Copy, Debug)]
pub struct Tinker {
    /// Pair cutoff used for the *compute* loops (Å).
    pub cutoff: f64,
    /// STILL-vs-exact radius inflation (see module docs).
    pub still_radius_inflation: f64,
}

impl Default for Tinker {
    fn default() -> Self {
        Tinker { cutoff: 20.0, still_radius_inflation: 1.45 }
    }
}

impl GbPackage for Tinker {
    fn name(&self) -> &'static str {
        "Tinker 6.0"
    }

    fn gb_model(&self) -> &'static str {
        "STILL"
    }

    fn parallelism(&self) -> &'static str {
        "Shared (OpenMP)"
    }

    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome {
        // Quadratic static allocations: the §V.D memory wall.
        let m = mol.len() as f64;
        let quadratic = (m * m * ctx.factors.tinker_bytes_per_pair) as usize;
        if quadratic > ctx.cluster.machine.dram_per_node {
            return PackageOutcome::OutOfMemory {
                name: self.name(),
                required_bytes: quadratic,
                node_bytes: ctx.cluster.machine.dram_per_node,
            };
        }
        let nb = NbList::build(mol, self.cutoff);
        let (mut born, ops_radii) = born_radii_hct(mol, &nb, HCT_SCALE);
        for r in &mut born {
            *r = (*r * self.still_radius_inflation).min(BORN_MAX);
        }
        let (raw, ops_epol) = pairwise_epol_cutoff(mol, &nb, &born);
        let pair_ops = ops_radii + ops_epol;
        let threads = ctx.cluster.machine.cores_per_node();
        // Tinker is ONE process with `threads` OpenMP threads sharing the
        // quadratic arrays — price its memory pressure under that layout,
        // not the caller's MPI placement.
        let shared_ctx = PackageContext {
            cluster: polaroct_cluster::machine::ClusterSpec::new(
                ctx.cluster.machine,
                polaroct_cluster::machine::Placement::new(1, threads),
            ),
            ..*ctx
        };
        let time = shared_package_time(
            &shared_ctx,
            pair_ops,
            ctx.factors.tinker_per_op,
            ctx.factors.tinker_fixed,
            threads,
            ctx.factors.tinker_omp_efficiency,
            quadratic,
        );
        PackageOutcome::Ok(PackageReport {
            name: self.name(),
            energy_kcal: finish_energy(ctx, raw),
            time,
            pair_ops,
            memory_per_process: quadratic,
            cores: threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx() -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(12),
        ))
    }

    #[test]
    fn energy_is_about_70_percent_of_hct_class() {
        let mol = synth::protein("p", 600, 3);
        let t = Tinker::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        let a = crate::amber::Amber::default().run(&mol, &ctx()).report().unwrap().energy_kcal;
        let ratio = t / a;
        assert!(
            (0.60..0.80).contains(&ratio),
            "Tinker/exact-class ratio {ratio}, expected ≈0.7"
        );
    }

    #[test]
    fn oom_beyond_12k_atoms() {
        // Don't build a 13k-atom molecule for a memory check: the check
        // happens before any compute, so a tiny molecule with a patched
        // length is not possible — instead verify the threshold math via
        // a real build at the boundary sizes.
        let small = synth::protein("p", 2_000, 1);
        assert!(Tinker::default().run(&small, &ctx()).report().is_some());
        // 12,700 atoms: modelled quadratic arrays exceed 24 GB.
        let f = ctx().factors;
        assert!(
            (12_700f64.powi(2) * f.tinker_bytes_per_pair) as usize
                > MachineSpec::lonestar4().dram_per_node
        );
    }

    #[test]
    fn shared_memory_time_uses_node_cores() {
        let mol = synth::protein("p", 800, 5);
        let r = Tinker::default().run(&mol, &ctx()).report().unwrap().clone();
        assert_eq!(r.cores, 12);
        assert!(r.time > 0.0);
    }
}
