//! The common interface over package analogs, plus shared energy/time
//! helpers.

use crate::calib::PackageFactors;
use crate::nblist::NbList;
use polaroct_cluster::calib::KernelCosts;
use polaroct_cluster::machine::ClusterSpec;
use polaroct_cluster::memory::MemoryModel;
use polaroct_core::gb::{epol_from_raw_sum, inv_f_gb};
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::Molecule;

/// Born-radius clamp shared by the baselines (same as the octree path's).
pub const BORN_MAX: f64 = 1_000.0;

/// Everything a package run needs besides the molecule.
#[derive(Clone, Copy, Debug)]
pub struct PackageContext {
    /// Cluster/placement the package runs on (P ranks or p threads).
    pub cluster: ClusterSpec,
    /// Reference per-op kernel costs.
    pub costs: KernelCosts,
    /// Per-package calibration.
    pub factors: PackageFactors,
    /// Solvent dielectric.
    pub eps_solvent: f64,
}

impl PackageContext {
    pub fn new(cluster: ClusterSpec) -> Self {
        PackageContext {
            cluster,
            costs: KernelCosts::lonestar4_reference(),
            factors: PackageFactors::default(),
            eps_solvent: 80.0,
        }
    }
}

/// A successful package run.
#[derive(Clone, Debug)]
pub struct PackageReport {
    pub name: &'static str,
    pub energy_kcal: f64,
    /// Simulated wall time (s).
    pub time: f64,
    /// Inner-loop pair operations executed.
    pub pair_ops: u64,
    /// Bytes per process replica (data + neighbor structures).
    pub memory_per_process: usize,
    pub cores: usize,
}

/// Run outcome: success or the §V.D out-of-memory failure.
#[derive(Clone, Debug)]
pub enum PackageOutcome {
    Ok(PackageReport),
    OutOfMemory {
        name: &'static str,
        required_bytes: usize,
        node_bytes: usize,
    },
}

impl PackageOutcome {
    pub fn report(&self) -> Option<&PackageReport> {
        match self {
            PackageOutcome::Ok(r) => Some(r),
            PackageOutcome::OutOfMemory { .. } => None,
        }
    }
}

/// One package analog.
pub trait GbPackage {
    /// Table II display name.
    fn name(&self) -> &'static str;
    /// GB model label (HCT / OBC / STILL / volume-r6).
    fn gb_model(&self) -> &'static str;
    /// Parallelism label.
    fn parallelism(&self) -> &'static str;
    /// Execute on a molecule.
    fn run(&self, mol: &Molecule, ctx: &PackageContext) -> PackageOutcome;
}

/// Cutoff GB energy: self terms plus every ordered pair in the nblist.
/// Returns the raw sum (convert with [`epol_from_raw_sum`]) and pair ops.
pub fn pairwise_epol_cutoff(mol: &Molecule, nb: &NbList, born: &[f64]) -> (f64, u64) {
    let mut raw = 0.0;
    let mut ops = 0u64;
    for i in 0..mol.len() {
        let (qi, ri) = (mol.charges[i], born[i]);
        raw += qi * qi / ri;
        let mut acc = 0.0;
        for &j in nb.of(i) {
            let j = j as usize;
            let r2 = mol.positions[i].dist2(mol.positions[j]);
            acc += mol.charges[j] * inv_f_gb(r2, ri, born[j], MathMode::Exact);
        }
        raw += qi * acc;
        ops += nb.of(i).len() as u64 + 1;
    }
    (raw, ops)
}

/// Cutoff GB energy streamed from a cell list (no stored pair list).
/// Same ordered-pair + self-term semantics as [`pairwise_epol_cutoff`].
pub fn pairwise_epol_cells(mol: &Molecule, cutoff: f64, born: &[f64]) -> (f64, u64) {
    use polaroct_surface::CellList;
    let cells = CellList::new(&mol.positions, cutoff);
    let c2 = cutoff * cutoff;
    let mut raw = 0.0;
    let mut ops = 0u64;
    for i in 0..mol.len() {
        let (qi, ri) = (mol.charges[i], born[i]);
        raw += qi * qi / ri;
        let pi = mol.positions[i];
        let mut acc = 0.0;
        cells.for_neighbors(pi, cutoff, |j| {
            let j = j as usize;
            if j == i {
                return;
            }
            let r2 = pi.dist2(mol.positions[j]);
            if r2 > c2 {
                return;
            }
            acc += mol.charges[j] * inv_f_gb(r2, ri, born[j], MathMode::Exact);
            ops += 1;
        });
        raw += qi * acc;
        ops += 1;
    }
    (raw, ops)
}

/// Time model for an MPI package that divides atoms evenly over `P` ranks
/// with fully replicated data: compute = ops/P × per-op × factor ×
/// memory-slowdown; communication = radii allgather + energy reduce.
pub fn mpi_package_time(
    ctx: &PackageContext,
    pair_ops: u64,
    per_op_factor: f64,
    fixed: f64,
    bytes_per_process: usize,
) -> f64 {
    let p = ctx.cluster.placement.processes;
    let slow = MemoryModel::new(bytes_per_process).slowdown(&ctx.cluster);
    let per_op = ctx.costs.epol_near * per_op_factor;
    let compute = pair_ops as f64 / p as f64 * per_op * slow;
    let comm = {
        let cm = polaroct_cluster::costmodel::CommCostModel::for_cluster(&ctx.cluster);
        // Radii exchange + energy reduction, once per evaluation.
        cm.allgatherv(bytes_per_process.min(1 << 20)) + cm.reduce(8) + cm.barrier()
    };
    fixed + compute + comm
}

/// Time model for a shared-memory (OpenMP-style) package on `p` threads
/// with efficiency `eff` (speedup ≈ eff·p).
pub fn shared_package_time(
    ctx: &PackageContext,
    pair_ops: u64,
    per_op_factor: f64,
    fixed: f64,
    threads: usize,
    eff: f64,
    bytes_per_process: usize,
) -> f64 {
    let slow = MemoryModel::new(bytes_per_process).slowdown(&ctx.cluster);
    let per_op = ctx.costs.epol_near * per_op_factor;
    let denom = (threads as f64 * eff).max(1.0);
    fixed + pair_ops as f64 * per_op * slow / denom
}

/// Convert a raw sum to kcal/mol with the context's dielectric.
pub fn finish_energy(ctx: &PackageContext, raw: f64) -> f64 {
    epol_from_raw_sum(raw, ctx.eps_solvent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_cluster::machine::{MachineSpec, Placement};
    use polaroct_molecule::synth;

    fn ctx(cores: usize) -> PackageContext {
        PackageContext::new(ClusterSpec::new(
            MachineSpec::lonestar4(),
            Placement::distributed(cores),
        ))
    }

    #[test]
    fn cutoff_epol_approaches_all_pairs_for_large_cutoff() {
        let mol = synth::protein("p", 200, 3);
        let born = vec![2.0; 200];
        let nb_big = NbList::build(&mol, 500.0);
        let (raw_big, _) = pairwise_epol_cutoff(&mol, &nb_big, &born);
        // Brute-force ordered-pair sum.
        let mut brute = 0.0;
        for i in 0..200 {
            for j in 0..200 {
                let r2 = mol.positions[i].dist2(mol.positions[j]);
                brute += mol.charges[i] * mol.charges[j]
                    * inv_f_gb(r2, born[i], born[j], MathMode::Exact);
            }
        }
        assert!(((raw_big - brute) / brute).abs() < 1e-12);
    }

    #[test]
    fn small_cutoff_changes_the_energy() {
        let mol = synth::protein("p", 300, 5);
        let born = vec![2.0; 300];
        let (raw_small, _) = pairwise_epol_cutoff(&mol, &NbList::build(&mol, 6.0), &born);
        let (raw_big, _) = pairwise_epol_cutoff(&mol, &NbList::build(&mol, 200.0), &born);
        assert!((raw_small - raw_big).abs() > 1e-12);
    }

    #[test]
    fn mpi_time_scales_down_with_ranks() {
        let c1 = ctx(1);
        let c12 = ctx(12);
        let t1 = mpi_package_time(&c1, 100_000_000, 1.0, 0.0, 1 << 20);
        let t12 = mpi_package_time(&c12, 100_000_000, 1.0, 0.0, 1 << 20);
        assert!(t12 < t1 / 6.0, "t1={t1} t12={t12}");
    }

    #[test]
    fn fixed_cost_dominates_small_runs() {
        let c = ctx(12);
        let t = mpi_package_time(&c, 1_000, 1.0, 0.5, 1 << 20);
        assert!(t > 0.5 && t < 0.51);
    }

    #[test]
    fn shared_time_obeys_efficiency() {
        let c = ctx(1);
        let serial = shared_package_time(&c, 1_000_000, 1.0, 0.0, 1, 1.0, 1 << 20);
        let par = shared_package_time(&c, 1_000_000, 1.0, 0.0, 12, 0.5, 1 << 20);
        assert!((serial / par - 6.0).abs() < 0.01);
    }

    #[test]
    fn outcome_report_accessor() {
        let r = PackageReport {
            name: "x",
            energy_kcal: -1.0,
            time: 1.0,
            pair_ops: 1,
            memory_per_process: 1,
            cores: 1,
        };
        assert!(PackageOutcome::Ok(r).report().is_some());
        let oom = PackageOutcome::OutOfMemory { name: "x", required_bytes: 2, node_bytes: 1 };
        assert!(oom.report().is_none());
    }
}
