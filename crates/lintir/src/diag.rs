//! Diagnostics, JSON rendering, and the ratchet baseline.
//!
//! Baseline keys are deliberately line-number-free —
//! `{code}|{file}|{fn}|{anchor}` with an occurrence count — so pure
//! line shifts don't churn the ratchet. A count *increase* for a key
//! (or a brand-new key) is a new finding and blocks; a *decrease* is
//! stale pinning and also blocks (re-bless to shrink the baseline).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code: `PA0xx` / `DL0xx` / `WP0xx` / `DT0xx`.
    pub code: &'static str,
    /// Workspace-relative file of the primary site.
    pub file: String,
    /// 1-based line of the primary site.
    pub line: usize,
    /// Enclosing function name (empty for file-level findings).
    pub func: String,
    /// Line-free site descriptor used in the baseline key (e.g. the
    /// panicking expression or blocking callee name).
    pub anchor: String,
    pub message: String,
    /// Root→site call path (`file:line fn` hops), when interprocedural.
    pub path: Vec<String>,
}

impl Diagnostic {
    /// Ratchet key: everything identifying except line numbers.
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.code, self.file, self.func, self.anchor)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array (hand-rolled: the engine is
/// dependency-free by design).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"fn\":\"{}\",\"anchor\":\"{}\",\"message\":\"{}\",\"path\":[",
            d.code,
            json_escape(&d.file),
            d.line,
            json_escape(&d.func),
            json_escape(&d.anchor),
            json_escape(&d.message),
        );
        for (j, hop) in d.path.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(hop));
        }
        out.push_str("]}");
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Human-readable rendering, one block per finding.
pub fn to_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}: {}:{}: {}", d.code, d.file, d.line, d.message);
        for hop in &d.path {
            let _ = writeln!(out, "    via {hop}");
        }
    }
    out
}

/// Aggregate diagnostics into baseline form: `count|key` per distinct
/// key, sorted.
pub fn to_baseline(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.key()).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# cargo xtask analyze ratchet baseline — `count|code|file|fn|anchor` per pinned finding.\n\
         # Regenerate with `cargo xtask analyze --bless-baseline` (only to shrink or after review).\n",
    );
    for (key, count) in counts {
        let _ = writeln!(out, "{count}|{key}");
    }
    out
}

/// Parse a baseline file into key → count.
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((count, key)) = line.split_once('|') {
            if let Ok(n) = count.trim().parse::<usize>() {
                out.insert(key.to_string(), n);
            }
        }
    }
    out
}

/// Ratchet verdict for one drift between current findings and baseline.
#[derive(Debug, PartialEq, Eq)]
pub enum Drift {
    /// Key present now with more occurrences than pinned (or unpinned).
    New { key: String, have: usize, pinned: usize },
    /// Key pinned with more occurrences than currently found.
    Stale { key: String, have: usize, pinned: usize },
}

/// Compare current diagnostics against a parsed baseline. Empty result
/// ⇒ ratchet is green.
pub fn ratchet(diags: &[Diagnostic], baseline: &BTreeMap<String, usize>) -> Vec<Drift> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.key()).or_insert(0) += 1;
    }
    let mut drifts = Vec::new();
    for (key, &have) in &counts {
        let pinned = baseline.get(key).copied().unwrap_or(0);
        if have > pinned {
            drifts.push(Drift::New { key: key.clone(), have, pinned });
        }
    }
    for (key, &pinned) in baseline {
        let have = counts.get(key).copied().unwrap_or(0);
        if have < pinned {
            drifts.push(Drift::Stale { key: key.clone(), have, pinned });
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, file: &str, line: usize, func: &str, anchor: &str) -> Diagnostic {
        Diagnostic {
            code,
            file: file.into(),
            line,
            func: func.into(),
            anchor: anchor.into(),
            message: format!("{anchor} in {func}"),
            path: vec![],
        }
    }

    #[test]
    fn baseline_round_trips_and_ignores_lines() {
        let diags = vec![
            d("PA003", "a.rs", 10, "f", "xs[…]"),
            d("PA003", "a.rs", 99, "f", "xs[…]"),
            d("DL001", "b.rs", 5, "g", "recv"),
        ];
        let text = to_baseline(&diags);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed.get("PA003|a.rs|f|xs[…]"), Some(&2));
        assert_eq!(parsed.get("DL001|b.rs|g|recv"), Some(&1));
        // Same findings on shifted lines: ratchet stays green.
        let shifted = vec![
            d("PA003", "a.rs", 11, "f", "xs[…]"),
            d("PA003", "a.rs", 100, "f", "xs[…]"),
            d("DL001", "b.rs", 6, "g", "recv"),
        ];
        assert!(ratchet(&shifted, &parsed).is_empty());
    }

    #[test]
    fn ratchet_blocks_new_and_stale() {
        let baseline = parse_baseline("1|PA003|a.rs|f|xs[…]\n2|PA002|b.rs|g|.unwrap()\n");
        let now = vec![
            d("PA003", "a.rs", 1, "f", "xs[…]"),
            d("PA003", "a.rs", 2, "f", "xs[…]"), // one more than pinned
            d("PA002", "b.rs", 3, "g", ".unwrap()"), // one fewer than pinned
        ];
        let drifts = ratchet(&now, &baseline);
        assert_eq!(drifts.len(), 2);
        assert!(drifts
            .iter()
            .any(|x| matches!(x, Drift::New { have: 2, pinned: 1, .. })));
        assert!(drifts
            .iter()
            .any(|x| matches!(x, Drift::Stale { have: 1, pinned: 2, .. })));
    }

    #[test]
    fn json_escapes_and_renders_paths() {
        let mut one = d("WP001", "wire.rs", 3, "", "HELLO");
        one.message = "tag \"HELLO\"\nnever decoded".into();
        one.path = vec!["a.rs:1 root".into()];
        let js = to_json(&[one]);
        assert!(js.contains("\\\"HELLO\\\""));
        assert!(js.contains("\\n"));
        assert!(js.contains("\"a.rs:1 root\""));
        assert!(js.starts_with("[\n"));
        assert!(js.ends_with("]\n"));
    }
}
