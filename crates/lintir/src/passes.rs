//! The four interprocedural invariant passes.
//!
//! | code  | pass                      | waiver marker       |
//! |-------|---------------------------|---------------------|
//! | PA0xx | panic-reachability        | `// PANIC-OK:`      |
//! | DL0xx | deadline-boundedness      | `// DEADLINE-OK:`   |
//! | WP0xx | wire-protocol totality    | `// WIRE-OK:`       |
//! | DT0xx | determinism dataflow      | `// DETERMINISM-OK:`|
//!
//! Each pass is name- and token-driven; DESIGN.md §14 documents what
//! each one over- and under-approximates.

use crate::diag::Diagnostic;
use crate::graph::{CallGraph, FnId, Workspace};
use crate::ir::{Fact, FnIr, PanicKind, T};
use crate::lex::Tok;
use std::collections::{BTreeSet, HashMap};

/// Pass configuration. [`Config::default`] mirrors the project layout
/// (the lists xtask's legacy rules pin).
#[derive(Clone, Debug)]
pub struct Config {
    /// Files whose non-test functions must not reach a panic.
    pub no_panic_files: Vec<String>,
    /// Files whose non-test functions root the deadline pass.
    pub entry_files: Vec<String>,
    /// Files carrying wire-protocol encode/decode code.
    pub wire_files: Vec<String>,
    /// Files allowed scheduling-order float accumulation.
    pub blessed_float_files: Vec<String>,
    /// Also report debug-build integer overflow arithmetic (PA006).
    pub debug_arith: bool,
}

impl Default for Config {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        Config {
            no_panic_files: v(&[
                "crates/bench/src/bin/kernel_throughput.rs",
                "crates/bench/src/bin/list_reuse.rs",
                "crates/cluster/src/comm.rs",
                "crates/cluster/src/proc.rs",
                "crates/cluster/src/runner.rs",
                "crates/cluster/src/transport.rs",
                "crates/cluster/src/wire.rs",
                "crates/core/src/drivers.rs",
                "crates/core/src/lists.rs",
                "crates/core/src/procexec.rs",
                "crates/core/src/soa.rs",
                "crates/core/src/system.rs",
                "crates/octree/src/build.rs",
                "crates/octree/src/parallel.rs",
            ]),
            entry_files: v(&[
                "crates/cluster/src/comm.rs",
                "crates/cluster/src/proc.rs",
                "crates/cluster/src/transport.rs",
            ]),
            wire_files: v(&["crates/cluster/src/wire.rs", "crates/core/src/procexec.rs"]),
            blessed_float_files: v(&["crates/sched/src/reduce.rs", "crates/core/src/soa.rs"]),
            debug_arith: false,
        }
    }
}

fn code_of(kind: PanicKind) -> &'static str {
    match kind {
        PanicKind::Macro => "PA001",
        PanicKind::UnwrapExpect => "PA002",
        PanicKind::SliceIndex => "PA003",
        PanicKind::IntDivRem => "PA004",
        PanicKind::CopyFromSlice => "PA005",
        PanicKind::DebugArith => "PA006",
    }
}

/// Run every pass and return diagnostics sorted by (file, line, code).
pub fn analyze(ws: &Workspace, cfg: &Config) -> Vec<Diagnostic> {
    let graph = CallGraph::build(ws);
    let mut diags = Vec::new();
    diags.extend(panic_reachability(ws, &graph, cfg));
    diags.extend(deadline_boundedness(ws, &graph, cfg));
    diags.extend(wire_totality(ws, cfg));
    diags.extend(determinism_dataflow(ws, &graph, cfg));
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code))
    });
    diags
}

fn roots_in(ws: &Workspace, files: &[String]) -> Vec<FnId> {
    (0..ws.fns.len())
        .filter(|&id| {
            let f = ws.fn_ir(id);
            !f.in_test && files.iter().any(|p| p == &ws.file_of(id).rel)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// PA: panic-reachability
// ---------------------------------------------------------------------------

fn panic_reachability(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let roots = roots_in(ws, &cfg.no_panic_files);
    let (dist, pred) = graph.bfs(&roots);
    let mut path_cache: HashMap<FnId, Vec<String>> = HashMap::new();
    let mut out = Vec::new();
    for (&id, &d) in &dist {
        let f = ws.fn_ir(id);
        if f.in_test {
            continue;
        }
        let file = ws.file_of(id);
        let in_no_panic_file = cfg.no_panic_files.iter().any(|p| p == &file.rel);
        for fact in &f.facts {
            let Fact::Panic { kind, line, what } = fact else { continue };
            if *kind == PanicKind::DebugArith && !cfg.debug_arith {
                continue;
            }
            // Explicit panic macros and unwrap/expect *inside* a
            // no-panic file are the legacy per-line rule's domain —
            // reporting them here too would double every finding.
            if in_no_panic_file
                && matches!(kind, PanicKind::Macro | PanicKind::UnwrapExpect)
            {
                continue;
            }
            if file.waived(*line, "PANIC-OK:") {
                continue;
            }
            let path = if d == 0 {
                Vec::new()
            } else {
                path_cache
                    .entry(id)
                    .or_insert_with(|| graph.path_to(ws, &pred, id))
                    .clone()
            };
            let reach = if d == 0 {
                String::new()
            } else {
                format!(" (reachable from a no-panic zone, {d} call{} away)",
                    if d == 1 { "" } else { "s" })
            };
            out.push(Diagnostic {
                code: code_of(*kind),
                file: file.rel.clone(),
                line: *line,
                func: f.name.clone(),
                anchor: what.clone(),
                message: format!("may panic: `{what}` in `{}`{reach}", f.name),
                path,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// DL: deadline-boundedness
// ---------------------------------------------------------------------------

fn deadline_boundedness(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let roots = roots_in(ws, &cfg.entry_files);
    let (dist, pred) = graph.bfs(&roots);
    let mut path_cache: HashMap<FnId, Vec<String>> = HashMap::new();
    let mut out = Vec::new();
    for (&id, &d) in &dist {
        let f = ws.fn_ir(id);
        if f.in_test {
            continue;
        }
        let file = ws.file_of(id);
        for fact in &f.facts {
            match fact {
                Fact::Blocking { name, line } => {
                    // A call that resolved to a workspace function is not
                    // a blocking *primitive* (e.g. `SliceWriter::write`);
                    // its body is analyzed transitively instead.
                    let resolved_local = graph.callees[id]
                        .iter()
                        .any(|&(t, l)| l == *line && ws.fn_ir(t).name == *name);
                    if resolved_local {
                        continue;
                    }
                    // Bounded if the enclosing fn received a deadline/
                    // timeout, or the socket was bounded earlier in the
                    // same fn body.
                    let bounded = f.deadline_bound
                        || f.facts.iter().any(|x| {
                            matches!(x, Fact::TimeoutSetter { line: sl, disables: false }
                                if *sl <= *line)
                        });
                    if bounded || file.waived(*line, "DEADLINE-OK:") {
                        continue;
                    }
                    let path = if d == 0 {
                        Vec::new()
                    } else {
                        path_cache
                            .entry(id)
                            .or_insert_with(|| graph.path_to(ws, &pred, id))
                            .clone()
                    };
                    out.push(Diagnostic {
                        code: "DL001",
                        file: file.rel.clone(),
                        line: *line,
                        func: f.name.clone(),
                        anchor: name.clone(),
                        message: format!(
                            "unbounded blocking call `{name}` reachable from cluster entry \
                             points: `{}` carries no deadline/timeout and sets none before \
                             the call",
                            f.name
                        ),
                        path,
                    });
                }
                Fact::TimeoutSetter { line, disables: true } => {
                    if file.waived(*line, "DEADLINE-OK:") {
                        continue;
                    }
                    out.push(Diagnostic {
                        code: "DL002",
                        file: file.rel.clone(),
                        line: *line,
                        func: f.name.clone(),
                        anchor: "set_timeout(None)".into(),
                        message: format!(
                            "`{}` disables a socket timeout (`set_*_timeout(None)`) on a \
                             path reachable from cluster entry points",
                            f.name
                        ),
                        path: Vec::new(),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// WP: wire-protocol totality
// ---------------------------------------------------------------------------

/// How a `kind::NAME` mention is used at one site.
#[derive(Clone, Copy, PartialEq)]
enum WireUse {
    Encode,
    Decode,
}

fn classify_kind_use(body: &[T], name_at: usize) -> WireUse {
    // Following `=>` or `|` ⇒ match arm ⇒ decode.
    if let (Some(a), b) = (body.get(name_at + 1), body.get(name_at + 2)) {
        if a.text == "|" {
            return WireUse::Decode;
        }
        if a.text == "=" && b.is_some_and(|b| b.text == ">" && a.end == b.start) {
            return WireUse::Decode;
        }
    }
    // Preceding `==`/`!=` ⇒ comparison against a received byte ⇒ decode.
    // (`name_at` points at NAME; `kind :: NAME` ⇒ `kind` is at -3.)
    if name_at >= 5 {
        let (a, b) = (&body[name_at - 5], &body[name_at - 4]);
        if (a.text == "=" || a.text == "!") && b.text == "=" && a.end == b.start {
            return WireUse::Decode;
        }
    }
    WireUse::Encode
}

fn wire_totality(ws: &Workspace, cfg: &Config) -> Vec<Diagnostic> {
    // Collect the declared kind constants from wire files.
    let mut consts: Vec<(String, usize, String)> = Vec::new(); // (name, decl line, file)
    for file in &ws.files {
        if !cfg.wire_files.iter().any(|p| p == &file.rel) {
            continue;
        }
        for k in &file.kind_consts {
            consts.push((k.name.clone(), k.line, file.rel.clone()));
        }
    }
    if consts.is_empty() && cfg.wire_files.iter().all(|p| {
        !ws.files.iter().any(|f| &f.rel == p)
    }) {
        return Vec::new(); // wire files absent (e.g. fixture workspaces)
    }

    // Scan every non-test fn body workspace-wide for `kind :: NAME`.
    let mut encoded: BTreeSet<String> = BTreeSet::new();
    let mut decoded: BTreeSet<String> = BTreeSet::new();
    for id in 0..ws.fns.len() {
        let f = ws.fn_ir(id);
        if f.in_test {
            continue;
        }
        let body = &f.body;
        for i in 0..body.len() {
            if body[i].kind != Tok::Ident || body[i].text != "kind" {
                continue;
            }
            let is_path = i + 3 < body.len()
                && body[i + 1].text == ":"
                && body[i + 2].text == ":"
                && body[i + 1].end == body[i + 2].start
                && body[i + 3].kind == Tok::Ident;
            if !is_path {
                continue;
            }
            let name = body[i + 3].text.clone();
            match classify_kind_use(body, i + 3) {
                WireUse::Encode => encoded.insert(name),
                WireUse::Decode => decoded.insert(name),
            };
        }
    }

    let mut out = Vec::new();
    for (name, line, file_rel) in &consts {
        let file = ws.files.iter().find(|f| &f.rel == file_rel).unwrap();
        if file.waived(*line, "WIRE-OK:") {
            continue;
        }
        let enc = encoded.contains(name);
        let dec = decoded.contains(name);
        if enc && !dec {
            out.push(Diagnostic {
                code: "WP001",
                file: file_rel.clone(),
                line: *line,
                func: String::new(),
                anchor: name.clone(),
                message: format!(
                    "frame kind `{name}` is encoded but no decode arm matches it — \
                     receivers will reject or drop this message"
                ),
                path: Vec::new(),
            });
        } else if dec && !enc {
            out.push(Diagnostic {
                code: "WP002",
                file: file_rel.clone(),
                line: *line,
                func: String::new(),
                anchor: name.clone(),
                message: format!(
                    "frame kind `{name}` has a decode arm but is never encoded — \
                     dead protocol surface or a missing sender"
                ),
                path: Vec::new(),
            });
        } else if !enc && !dec {
            out.push(Diagnostic {
                code: "WP001",
                file: file_rel.clone(),
                line: *line,
                func: String::new(),
                anchor: name.clone(),
                message: format!("frame kind `{name}` is neither encoded nor decoded"),
                path: Vec::new(),
            });
        }
    }

    out.extend(paired_tag_sets(ws, cfg));
    out
}

/// Compare literal tag sets between `put_X`/`get_X` and
/// `encode_X`/`decode_X` pairs in wire files: every byte the encoder can
/// emit must have a decoder arm (WP003) and vice versa (WP004).
fn paired_tag_sets(ws: &Workspace, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.wire_files.iter().any(|p| p == &file.rel) {
            continue;
        }
        let find = |name: &str| file.fns.iter().find(|f| f.name == name && !f.in_test);
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            let partner = if let Some(x) = f.name.strip_prefix("put_") {
                find(&format!("get_{x}"))
            } else if let Some(x) = f.name.strip_prefix("encode_") {
                find(&format!("decode_{x}"))
            } else {
                None
            };
            let Some(dec) = partner else { continue };
            let enc_tags = encoder_literals(f);
            let dec_tags = decoder_literals(dec);
            if enc_tags.is_empty() && dec_tags.is_empty() {
                continue;
            }
            for t in enc_tags.difference(&dec_tags) {
                if file.waived(f.line, "WIRE-OK:") {
                    continue;
                }
                out.push(Diagnostic {
                    code: "WP003",
                    file: file.rel.clone(),
                    line: f.line,
                    func: f.name.clone(),
                    anchor: format!("tag {t}"),
                    message: format!(
                        "`{}` can emit tag `{t}` but `{}` has no arm for it",
                        f.name, dec.name
                    ),
                    path: Vec::new(),
                });
            }
            for t in dec_tags.difference(&enc_tags) {
                if file.waived(dec.line, "WIRE-OK:") {
                    continue;
                }
                out.push(Diagnostic {
                    code: "WP004",
                    file: file.rel.clone(),
                    line: dec.line,
                    func: dec.name.clone(),
                    anchor: format!("tag {t}"),
                    message: format!(
                        "`{}` decodes tag `{t}` but `{}` never emits it",
                        dec.name, f.name
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

/// Integer literals an encoder can hand to `put_u8` (direct arguments
/// and match-arm results inside the argument).
fn encoder_literals(f: &FnIr) -> BTreeSet<u64> {
    let body = &f.body;
    let mut out = BTreeSet::new();
    for i in 0..body.len() {
        if body[i].kind == Tok::Ident
            && body[i].text == "put_u8"
            && i + 1 < body.len()
            && body[i + 1].text == "("
        {
            let close = crate::passes::matching_paren(body, i + 1);
            for t in &body[i + 2..close] {
                if t.kind == Tok::Num {
                    if let Ok(v) = parse_int(&t.text) {
                        out.insert(v);
                    }
                }
            }
        }
    }
    out
}

/// Integer literals a decoder matches on (`N =>` / `N |` arms).
fn decoder_literals(f: &FnIr) -> BTreeSet<u64> {
    let body = &f.body;
    let mut out = BTreeSet::new();
    for i in 0..body.len() {
        if body[i].kind != Tok::Num {
            continue;
        }
        let arm = match (body.get(i + 1), body.get(i + 2)) {
            (Some(a), _) if a.text == "|" => true,
            (Some(a), Some(b)) => a.text == "=" && b.text == ">" && a.end == b.start,
            _ => false,
        };
        if arm {
            if let Ok(v) = parse_int(&body[i].text) {
                out.insert(v);
            }
        }
    }
    out
}

/// Parse an integer literal's value, ignoring `_` separators and type
/// suffixes (`3u8`, `0x0A_u8`). Float-looking literals fail.
fn parse_int(s: &str) -> Result<u64, ()> {
    let s = s.replace('_', "");
    if s.contains('.') {
        return Err(());
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return u64::from_str_radix(&digits, 16).map_err(|_| ());
    }
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u64>().map_err(|_| ())
}

pub(crate) fn matching_paren(body: &[T], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in body.iter().enumerate().skip(open) {
        if t.kind == Tok::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    body.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// DT: determinism dataflow
// ---------------------------------------------------------------------------

/// Functions whose `&mut f64` parameter is accumulated into, made
/// transitive: `f(&mut acc)` → `g(&mut acc)` → `*acc += …`.
fn accumulator_fns(ws: &Workspace, graph: &CallGraph) -> Vec<bool> {
    let mut acc: Vec<bool> = (0..ws.fns.len())
        .map(|id| ws.fn_ir(id).accumulates_into_param)
        .collect();
    // Fixpoint: a fn that forwards a float &mut param to an accumulator
    // is itself an accumulator.
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if acc[id] {
                continue;
            }
            let f = ws.fn_ir(id);
            if f.float_mut_params.is_empty() {
                continue;
            }
            let forwards = f.calls.iter().any(|c| {
                c.mut_ref_args.iter().any(|a| f.float_mut_params.contains(a))
                    && graph.callees[id]
                        .iter()
                        .any(|&(t, line)| line == c.line && acc[t])
            });
            if forwards {
                acc[id] = true;
                changed = true;
            }
        }
        if !changed {
            return acc;
        }
    }
}

fn determinism_dataflow(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let acc_fns = accumulator_fns(ws, graph);
    let mut out = Vec::new();
    for id in 0..ws.fns.len() {
        let f = ws.fn_ir(id);
        if f.in_test {
            continue;
        }
        let file = ws.file_of(id);
        let blessed = cfg.blessed_float_files.iter().any(|p| p == &file.rel);

        // --- DT001: accumulation while iterating a HashMap/HashSet ---
        let mut hash_vars: Vec<&str> =
            f.hash_vars.iter().map(|s| s.as_str()).collect();
        hash_vars.extend(file.hash_vars.iter().map(|s| s.as_str()));
        for lp in &f.loops {
            if !lp.iter_idents.iter().any(|x| hash_vars.contains(&x.as_str())) {
                continue;
            }
            // Accumulation directly in the loop body…
            let mut hit: Option<(usize, String)> = f
                .accums
                .iter()
                .find(|a| a.at > lp.body.0 && a.at < lp.body.1)
                .map(|a| (a.line, format!("`{} += …`", a.lhs)));
            // …or handed to an accumulating callee via `&mut`.
            if hit.is_none() {
                hit = f
                    .calls
                    .iter()
                    .filter(|c| !c.mut_ref_args.is_empty())
                    .find(|c| {
                        body_range_contains_line(f, lp.body, c.line)
                            && graph.callees[id]
                                .iter()
                                .any(|&(t, line)| line == c.line && acc_fns[t])
                    })
                    .map(|c| (c.line, format!("`{}(&mut …)`", c.name)));
            }
            if let Some((line, what)) = hit {
                if file.waived(lp.line, "DETERMINISM-OK:")
                    || file.waived(line, "DETERMINISM-OK:")
                {
                    continue;
                }
                out.push(Diagnostic {
                    code: "DT001",
                    file: file.rel.clone(),
                    line,
                    func: f.name.clone(),
                    anchor: what.clone(),
                    message: format!(
                        "accumulation {what} while iterating a HashMap/HashSet in `{}` — \
                         iteration order is unstable, fold order must not depend on it",
                        f.name
                    ),
                    path: Vec::new(),
                });
            }
        }
        // Iterator-chain form: `map.iter()…sum::<f64>()` in one statement.
        out.extend(hash_chain_hits(f, file, &hash_vars));

        if blessed {
            continue; // DT002 does not apply to the reduction impls.
        }

        // --- DT002: float accumulation inside a parallel closure ---
        for ps in &f.par_sites {
            let mut hit: Option<(usize, String)> = f
                .accums
                .iter()
                .find(|a| {
                    a.at > ps.args.0
                        && a.at < ps.args.1
                        && !f.int_vars.contains(&a.lhs)
                        && !is_int_local(f, &a.lhs)
                        && !declared_in_region(f, &a.lhs, ps.args.0, a.at)
                        && !int_literal_rhs(f, a.at)
                })
                .map(|a| (a.line, format!("`{} += …`", a.lhs)));
            if hit.is_none() {
                hit = f
                    .calls
                    .iter()
                    .filter(|c| !c.mut_ref_args.is_empty())
                    .find(|c| {
                        c.line >= f.body[ps.args.0].line
                            && c.line <= f.body[ps.args.1.min(f.body.len() - 1)].line
                            && graph.callees[id]
                                .iter()
                                .any(|&(t, line)| line == c.line && acc_fns[t])
                    })
                    .map(|c| (c.line, format!("`{}(&mut …)`", c.name)));
            }
            if let Some((line, what)) = hit {
                if file.waived(line, "DETERMINISM-OK:") || file.waived(ps.line, "DETERMINISM-OK:")
                {
                    continue;
                }
                out.push(Diagnostic {
                    code: "DT002",
                    file: file.rel.clone(),
                    line,
                    func: f.name.clone(),
                    anchor: what.clone(),
                    message: format!(
                        "float accumulation {what} inside a parallel closure in `{}` — \
                         route the reduction through sched::reduce instead",
                        f.name
                    ),
                    path: Vec::new(),
                });
            }
        }
    }
    out
}

fn is_int_local(f: &FnIr, name: &str) -> bool {
    f.int_vars.iter().any(|v| v == name)
}

/// Is `name` declared (`let [mut] name`) or bound as a closure
/// parameter (`|name|`, `|name, …|`, `|…, name|`) between body token
/// indices `from..to`? Such a variable is per-task state, not a
/// captured accumulator.
fn declared_in_region(f: &FnIr, name: &str, from: usize, to: usize) -> bool {
    let body = &f.body;
    for i in from..to.min(body.len()) {
        if body[i].text == "let" {
            let mut j = i + 1;
            if j < body.len() && body[j].text == "mut" {
                j += 1;
            }
            if body.get(j).is_some_and(|t| t.text == name) {
                return true;
            }
        }
        if body[i].text == "|"
            && body.get(i + 1).is_some_and(|t| t.text == name)
            && body
                .get(i + 2)
                .is_some_and(|t| t.text == "|" || t.text == "," || t.text == ":")
        {
            return true;
        }
        if body[i].text == ","
            && body.get(i + 1).is_some_and(|t| t.text == name)
            && body.get(i + 2).is_some_and(|t| t.text == "|" || t.text == ",")
        {
            return true;
        }
    }
    false
}

/// Is the `+=` at body index `at` adding an integer literal (e.g.
/// `cursor += 1`)? Integer bookkeeping is not a float reduction.
fn int_literal_rhs(f: &FnIr, at: usize) -> bool {
    // `at` points at `+`; rhs starts after `=` (skip a unary minus).
    let mut j = at + 2;
    if f.body.get(j).is_some_and(|t| t.text == "-") {
        j += 1;
    }
    f.body
        .get(j)
        .is_some_and(|t| t.kind == Tok::Num && !t.text.contains('.') && !t.text.contains('e'))
}

fn body_range_contains_line(f: &FnIr, range: (usize, usize), line: usize) -> bool {
    let lo = f.body.get(range.0).map_or(usize::MAX, |t| t.line);
    let hi = f.body.get(range.1.min(f.body.len().saturating_sub(1))).map_or(0, |t| t.line);
    line >= lo && line <= hi
}

/// `map.iter()/.values()/.keys()` chained into `sum`/`fold`/`product`
/// within the same statement.
fn hash_chain_hits(
    f: &FnIr,
    file: &crate::ir::FileIr,
    hash_vars: &[&str],
) -> Vec<Diagnostic> {
    let body = &f.body;
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        let starts_chain = t.kind == Tok::Ident
            && hash_vars.contains(&t.text.as_str())
            && i + 2 < body.len()
            && body[i + 1].text == "."
            && matches!(
                body[i + 2].text.as_str(),
                "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain"
            );
        if starts_chain {
            let mut j = i + 3;
            while j < body.len() && body[j].text != ";" && body[j].text != "{" {
                if body[j].kind == Tok::Ident
                    && matches!(body[j].text.as_str(), "sum" | "fold" | "product")
                    && !file.waived(t.line, "DETERMINISM-OK:")
                    && !file.waived(body[j].line, "DETERMINISM-OK:")
                {
                    out.push(Diagnostic {
                        code: "DT001",
                        file: file.rel.clone(),
                        line: t.line,
                        func: f.name.clone(),
                        anchor: format!("`{}.{}().{}`", t.text, body[i + 2].text, body[j].text),
                        message: format!(
                            "`{}` folds over `{}` iteration in `{}` — HashMap/HashSet \
                             order is unstable",
                            body[j].text, t.text, f.name
                        ),
                        path: Vec::new(),
                    });
                    break;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)], cfg: &Config) -> Vec<Diagnostic> {
        let owned: Vec<(String, String)> =
            sources.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        let ws = Workspace::from_sources(&owned);
        analyze(&ws, cfg)
    }

    fn cfg_with(no_panic: &[&str], entries: &[&str]) -> Config {
        Config {
            no_panic_files: no_panic.iter().map(|s| s.to_string()).collect(),
            entry_files: entries.iter().map(|s| s.to_string()).collect(),
            wire_files: vec!["wire.rs".into()],
            blessed_float_files: vec!["blessed.rs".into()],
            debug_arith: false,
        }
    }

    #[test]
    fn transitive_unwrap_is_flagged_with_path() {
        let diags = run(
            &[
                ("np.rs", "pub fn driver() { helper(); }"),
                ("helper.rs", "pub fn helper() { maybe().unwrap(); }\nfn maybe() -> Option<u8> { None }"),
            ],
            &cfg_with(&["np.rs"], &[]),
        );
        let pa: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "PA002").collect();
        assert_eq!(pa.len(), 1);
        assert_eq!(pa[0].file, "helper.rs");
        assert_eq!(pa[0].func, "helper");
        assert_eq!(pa[0].path.len(), 2);
        assert!(pa[0].path[0].contains("driver"));
    }

    #[test]
    fn waiver_suppresses_at_introducing_site() {
        let diags = run(
            &[
                ("np.rs", "pub fn driver() { helper(); }"),
                (
                    "helper.rs",
                    "pub fn helper() {\n    // PANIC-OK: input is statically valid here\n    maybe().unwrap();\n}\nfn maybe() -> Option<u8> { None }",
                ),
            ],
            &cfg_with(&["np.rs"], &[]),
        );
        assert!(diags.iter().all(|d| d.code != "PA002"));
    }

    #[test]
    fn blind_recv_is_flagged_and_timeout_param_clears_it() {
        let bad = run(
            &[("entry.rs", "pub fn pump(rx: &Receiver) { rx.recv(); }")],
            &cfg_with(&[], &["entry.rs"]),
        );
        assert!(bad.iter().any(|d| d.code == "DL001" && d.anchor == "recv"));
        let good = run(
            &[("entry.rs", "pub fn pump(rx: &Receiver, timeout: Duration) { rx.recv(); }")],
            &cfg_with(&[], &["entry.rs"]),
        );
        assert!(good.iter().all(|d| d.code != "DL001"));
    }

    #[test]
    fn encode_only_wire_tag_is_flagged() {
        let diags = run(
            &[(
                "wire.rs",
                "pub mod kind { pub const PING: u8 = 9; pub const PONG: u8 = 10; }\n\
                 fn send(e: &mut Enc) { frame(kind::PING); frame(kind::PONG); }\n\
                 fn recvk(k: u8) { match k { kind::PONG => {} _ => {} } }",
            )],
            &cfg_with(&[], &[]),
        );
        let wp: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "WP001").collect();
        assert_eq!(wp.len(), 1);
        assert_eq!(wp[0].anchor, "PING");
    }

    #[test]
    fn paired_tag_sets_are_cross_checked() {
        let diags = run(
            &[(
                "wire.rs",
                "fn put_mode(e: &mut Enc, m: Mode) { e.put_u8(match m { Mode::A => 0, Mode::B => 1, Mode::C => 2 }); }\n\
                 fn get_mode(d: &mut Dec) -> Mode { match d.get_u8() { 0 => Mode::A, 1 => Mode::B, _ => Mode::A } }",
            )],
            &cfg_with(&[], &[]),
        );
        let wp3: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "WP003").collect();
        assert_eq!(wp3.len(), 1);
        assert_eq!(wp3[0].anchor, "tag 2");
    }

    #[test]
    fn pool_closure_float_accum_is_flagged() {
        let diags = run(
            &[(
                "hot.rs",
                "fn reduce(pool: &Pool) -> f64 { let mut e = 0.0; pool.run(|| { e += 1.0; }); e }",
            )],
            &cfg_with(&[], &[]),
        );
        assert!(diags.iter().any(|d| d.code == "DT002"));
        // Same shape in a blessed file is fine.
        let ok = run(
            &[(
                "blessed.rs",
                "fn reduce(pool: &Pool) -> f64 { let mut e = 0.0; pool.run(|| { e += 1.0; }); e }",
            )],
            &cfg_with(&[], &[]),
        );
        assert!(ok.iter().all(|d| d.code != "DT002"));
    }

    #[test]
    fn interprocedural_accumulator_through_mut_ref() {
        let diags = run(
            &[(
                "hot.rs",
                "fn add_into(acc: &mut f64, v: f64) { *acc += v; }\n\
                 fn reduce(pool: &Pool) -> f64 { let mut e = 0.0; pool.run(|| add_into(&mut e, 1.0)); e }",
            )],
            &cfg_with(&[], &[]),
        );
        assert!(diags.iter().any(|d| d.code == "DT002" && d.anchor.contains("add_into")));
    }

    #[test]
    fn hash_iteration_accumulation_is_flagged() {
        let diags = run(
            &[(
                "m.rs",
                "fn total(m: &HashMap<u32, f64>) -> f64 {\n    let mut s = 0.0;\n    for (_k, v) in m { s += v; }\n    s\n}",
            )],
            &cfg_with(&[], &[]),
        );
        assert!(diags.iter().any(|d| d.code == "DT001"));
    }

    #[test]
    fn hash_chain_sum_is_flagged() {
        let diags = run(
            &[("m.rs", "fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }")],
            &cfg_with(&[], &[]),
        );
        assert!(diags.iter().any(|d| d.code == "DT001" && d.anchor.contains("sum")));
    }
}
