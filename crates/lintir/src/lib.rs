//! `lintir` — dependency-free static-analysis engine for the project's
//! invariant gates.
//!
//! Layers, bottom to top:
//!
//! - [`lex`] — a total Rust lexer (every byte lands in exactly one
//!   token; raw strings, nested block comments, lifetimes vs char
//!   literals) plus the [`lex::strip_source`] helper the legacy
//!   per-line rules consume.
//! - [`ir`] — per-file item/signature/call-site IR with the *facts*
//!   the passes need (may-panic sites, blocking primitives, timeout
//!   setters, accumulations, loops, parallel-closure regions).
//! - [`graph`] — workspace loading and the name-resolved call graph
//!   with multi-source BFS for shortest witness paths.
//! - [`passes`] — the four interprocedural passes (`PA` panic
//!   reachability, `DL` deadline boundedness, `WP` wire-protocol
//!   totality, `DT` determinism dataflow).
//! - [`diag`] — diagnostics, JSON rendering, and the line-number-free
//!   ratchet baseline.
//!
//! The engine is consumed by `cargo xtask analyze`; DESIGN.md §14
//! documents the soundness model and per-pass caveats.

#![forbid(unsafe_code)]

pub mod diag;
pub mod graph;
pub mod ir;
pub mod lex;
pub mod passes;

pub use diag::{parse_baseline, ratchet, to_baseline, to_json, to_text, Diagnostic, Drift};
pub use graph::{CallGraph, Workspace};
pub use lex::{lex, strip_source};
pub use passes::{analyze, Config};
