//! Lightweight item/signature/call-site IR built on the lexer.
//!
//! One [`FileIr`] per source file: every `fn` item (free functions,
//! inherent/trait `impl` methods, trait declarations) becomes an
//! [`FnIr`] carrying its signature summary, its resolved-later call
//! sites, and the **facts** the passes consume — may-panic sites,
//! blocking primitives, timeout setters, accumulation ops, loops,
//! parallel-closure regions. Extraction is token-driven (no AST): the
//! soundness caveats this buys are documented per-pass in DESIGN.md §14.

use crate::lex::{lex, Tok};

/// A significant token (whitespace and comments dropped) with its text,
/// 1-based line, and byte span (adjacency checks for `+=`/`::`/`->`
/// compare `start`/`end`).
#[derive(Clone, Debug)]
pub struct T {
    pub kind: Tok,
    pub text: String,
    pub line: usize,
    pub start: usize,
    pub end: usize,
}

/// A call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallIr {
    /// Callee name (last path segment).
    pub name: String,
    /// Path qualifiers before the name (`wire::frame` → `["wire"]`),
    /// with `crate`/`self`/`super` stripped.
    pub qual: Vec<String>,
    /// Method-call syntax (`recv.foo(…)`)?
    pub method: bool,
    pub line: usize,
    /// Identifiers passed by `&mut` at the call's top level (the
    /// accumulate-through-call channel the determinism pass tracks).
    pub mut_ref_args: Vec<String>,
}

/// Kinds of may-panic facts the panic-reachability pass propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
    /// `assert*!` — explicit panics, firing in release builds.
    Macro,
    /// `.unwrap()` / `.expect(…)`.
    UnwrapExpect,
    /// Slice/array indexing `a[i]`.
    SliceIndex,
    /// Integer `/` or `%` whose right-hand side is a known-integer
    /// identifier (divide-by-zero capable).
    IntDivRem,
    /// `copy_from_slice` / `clone_from_slice` (length-mismatch panic).
    CopyFromSlice,
    /// Integer `+`/`-`/`*` between known-integer operands (overflow
    /// panics in debug builds only). Reported only under
    /// `Config::debug_arith`.
    DebugArith,
}

/// One extracted fact at a source line.
#[derive(Clone, Debug)]
pub enum Fact {
    Panic { kind: PanicKind, line: usize, what: String },
    /// An indefinitely-blocking primitive call (`recv`, `read`, `write`,
    /// `accept`, `wait`, …).
    Blocking { name: String, line: usize },
    /// `set_read_timeout` / `set_write_timeout` / `set_nonblocking` —
    /// bounds subsequent socket reads/writes in the same function.
    /// `disables` is true when the argument is literally `None` (which
    /// *removes* the bound).
    TimeoutSetter { line: usize, disables: bool },
}

/// A `for pat in expr { body }` loop.
#[derive(Clone, Debug)]
pub struct ForLoop {
    pub line: usize,
    /// Identifiers appearing in the iterated expression.
    pub iter_idents: Vec<String>,
    /// Token index range (into `FnIr::body`) of the loop body.
    pub body: (usize, usize),
}

/// A call handing a closure to a parallel primitive (`.run(`,
/// `.try_map(`, `spawn(`).
#[derive(Clone, Debug)]
pub struct ParSite {
    pub line: usize,
    /// Token index range (into `FnIr::body`) of the argument list.
    pub args: (usize, usize),
}

/// A `lhs += …` (or `*lhs += …`, `lhs[i] += …`) accumulation.
#[derive(Clone, Debug)]
pub struct AccumOp {
    pub line: usize,
    /// Base identifier being accumulated into (for `self.x[i] +=`, the
    /// field name `x`).
    pub lhs: String,
    /// Token index (into `FnIr::body`) of the `+` token.
    pub at: usize,
}

/// One function item.
#[derive(Clone, Debug, Default)]
pub struct FnIr {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub is_pub: bool,
    /// Under `#[cfg(test)]` or carrying `#[test]`.
    pub in_test: bool,
    /// Declared inside an `impl` block for this type name.
    pub impl_type: Option<String>,
    pub has_self: bool,
    /// Signature carries a `Duration`/`Instant` parameter or a
    /// parameter named `*timeout*`/`*deadline*` — the marker the
    /// deadline pass accepts as "the caller supplied a bound".
    pub deadline_bound: bool,
    /// Parameters of `&mut f64`-ish type (accumulation targets).
    pub float_mut_params: Vec<String>,
    /// Identifiers known integer-typed in this scope.
    pub int_vars: Vec<String>,
    /// Identifiers bound to HashMap/HashSet in this fn (params/lets).
    pub hash_vars: Vec<String>,
    /// Significant tokens of the body, *excluding* nested fn items.
    pub body: Vec<T>,
    pub calls: Vec<CallIr>,
    pub facts: Vec<Fact>,
    pub loops: Vec<ForLoop>,
    pub par_sites: Vec<ParSite>,
    pub accums: Vec<AccumOp>,
    /// Body accumulates (`+=`) into one of `float_mut_params` — made
    /// transitive by the graph layer.
    pub accumulates_into_param: bool,
}

/// A `pub const NAME: u8 = N;` inside a `mod kind { … }` block — the
/// wire pass cross-checks these against encode uses and decode arms.
#[derive(Clone, Debug)]
pub struct KindConst {
    pub name: String,
    pub value: u64,
    pub line: usize,
}

/// One parsed source file.
#[derive(Clone, Debug, Default)]
pub struct FileIr {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub fns: Vec<FnIr>,
    /// Frame-kind constants declared in a `mod kind` block.
    pub kind_consts: Vec<KindConst>,
    /// Identifiers bound/ascribed to HashMap/HashSet anywhere in the
    /// file (fields included) — name-based, like the legacy rule.
    pub hash_vars: Vec<String>,
    /// Raw source lines (waiver markers are matched against these).
    pub raw_lines: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut",
    "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type",
    "unsafe", "use", "where", "while",
];

const INT_TYPES: &[&str] =
    &["usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128"];

const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Indefinitely-blocking primitive names (exact match — `recv_timeout`,
/// `try_recv`, `try_wait` are their bounded cousins and do not appear).
pub const BLOCKING_NAMES: &[&str] =
    &["recv", "read", "write", "accept", "wait", "read_exact", "write_all", "read_to_end"];

/// Parallel primitives whose closures must not reduce floats.
pub const PARALLEL_NAMES: &[&str] = &["run", "try_map", "spawn"];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Significant tokens with line numbers.
fn significant(src: &str) -> Vec<T> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut pos = 0usize;
    for t in lex(src) {
        line += src[pos..t.start].matches('\n').count();
        pos = t.start;
        if !matches!(t.kind, Tok::Ws | Tok::LineComment | Tok::BlockComment) {
            out.push(T {
                kind: t.kind,
                text: src[t.start..t.end].to_string(),
                line,
                start: t.start,
                end: t.end,
            });
        }
    }
    out
}

/// Index of the token matching the opener at `open` (`{`/`}`, `(`/`)`,
/// `[`/`]`); `toks.len() - 1` when unbalanced.
fn matching(toks: &[T], open: usize, open_ch: &str, close_ch: &str) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Tok::Punct {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skip a generics group starting at `<` (returns index just past the
/// matching `>`). `->`'s `>` is not an angle closer.
fn skip_generics(toks: &[T], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == Tok::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    let arrow = j > 0 && toks[j - 1].text == "-" && toks[j - 1].end == t.start;
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Are tokens `i` and `i+1` adjacent in the source (no gap)?
fn adjacent(toks: &[T], i: usize) -> bool {
    i + 1 < toks.len() && toks[i].end == toks[i + 1].start
}

struct Parser<'a> {
    toks: &'a [T],
    fns: Vec<FnIr>,
    kind_consts: Vec<KindConst>,
    hash_vars: Vec<String>,
}

impl<'a> Parser<'a> {
    /// Walk the whole token stream, tracking `impl`/`mod`/test context
    /// by brace depth.
    fn parse(&mut self) {
        // (depth_when_entered, impl type) / (depth, mod name) / (depth) stacks.
        let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
        let mut mod_stack: Vec<(usize, String)> = Vec::new();
        let mut test_stack: Vec<usize> = Vec::new();
        let mut depth = 0usize;
        let mut pending_cfg_test = false;
        let mut pending_test_attr = false;
        let mut pending_pub = false;
        let mut i = 0;
        while i < self.toks.len() {
            let t = &self.toks[i];
            match (t.kind, t.text.as_str()) {
                (Tok::Punct, "{") => {
                    depth += 1;
                    i += 1;
                }
                (Tok::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                        impl_stack.pop();
                    }
                    while mod_stack.last().is_some_and(|&(d, _)| d > depth) {
                        mod_stack.pop();
                    }
                    while test_stack.last().is_some_and(|&d| d > depth) {
                        test_stack.pop();
                    }
                    i += 1;
                }
                (Tok::Punct, "#") => {
                    // Attribute: `#[…]` or `#![…]`.
                    let mut j = i + 1;
                    if j < self.toks.len() && self.toks[j].text == "!" {
                        j += 1;
                    }
                    if j < self.toks.len() && self.toks[j].text == "[" {
                        let close = matching(self.toks, j, "[", "]");
                        let attr: String = self.toks[i..=close]
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect::<Vec<_>>()
                            .join(" ");
                        if attr.contains("cfg ( test )") || attr.contains("cfg ( all ( test") {
                            pending_cfg_test = true;
                        }
                        if attr.contains("[ test ]") || attr.contains("[ test :") {
                            pending_test_attr = true;
                        }
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                (Tok::Ident, "pub") => {
                    pending_pub = true;
                    // Skip `pub(crate)` / `pub(super)` qualifiers.
                    if i + 1 < self.toks.len() && self.toks[i + 1].text == "(" {
                        i = matching(self.toks, i + 1, "(", ")") + 1;
                    } else {
                        i += 1;
                    }
                }
                (Tok::Ident, "impl") => {
                    // Find the block opener; extract the implemented type.
                    let mut j = i + 1;
                    if j < self.toks.len() && self.toks[j].text == "<" {
                        j = skip_generics(self.toks, j);
                    }
                    let mut ty: Option<String> = None;
                    let mut after_for: Option<String> = None;
                    let mut saw_for = false;
                    while j < self.toks.len() && self.toks[j].text != "{" && self.toks[j].text != ";"
                    {
                        let tj = &self.toks[j];
                        if tj.kind == Tok::Ident {
                            if tj.text == "for" {
                                saw_for = true;
                            } else if tj.text == "where" {
                                break;
                            } else if !is_keyword(&tj.text) {
                                if saw_for {
                                    if after_for.is_none() {
                                        after_for = Some(tj.text.clone());
                                    }
                                } else if ty.is_none() {
                                    ty = Some(tj.text.clone());
                                }
                            }
                        }
                        j += 1;
                    }
                    let impl_ty = after_for.or(ty);
                    // Register at the block's depth (the `{` handler will
                    // bump `depth`, so entries guard depth+1 regions).
                    impl_stack.push((depth + 1, impl_ty));
                    if pending_cfg_test {
                        test_stack.push(depth + 1);
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    pending_pub = false;
                    // Continue from the opener so `{` is processed normally.
                    while j < self.toks.len() && self.toks[j].text != "{" && self.toks[j].text != ";"
                    {
                        j += 1;
                    }
                    i = j;
                }
                (Tok::Ident, "mod") => {
                    if i + 1 < self.toks.len() && self.toks[i + 1].kind == Tok::Ident {
                        let name = self.toks[i + 1].text.clone();
                        if i + 2 < self.toks.len() && self.toks[i + 2].text == "{" {
                            mod_stack.push((depth + 1, name));
                            if pending_cfg_test {
                                test_stack.push(depth + 1);
                            }
                            i += 2; // land on `{`
                        } else {
                            i += 2; // `mod name;`
                        }
                    } else {
                        i += 1;
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    pending_pub = false;
                }
                (Tok::Ident, "const") => {
                    // `const NAME: u8 = N;` inside `mod kind` → KindConst.
                    let in_kind_mod = mod_stack.last().is_some_and(|(_, m)| m == "kind");
                    if in_kind_mod
                        && i + 1 < self.toks.len()
                        && self.toks[i + 1].kind == Tok::Ident
                    {
                        let name = self.toks[i + 1].text.clone();
                        let line = self.toks[i + 1].line;
                        // Scan to `=` then a numeric literal.
                        let mut j = i + 2;
                        while j < self.toks.len() && self.toks[j].text != "=" && self.toks[j].text != ";" {
                            j += 1;
                        }
                        if j + 1 < self.toks.len() && self.toks[j].text == "=" {
                            if let Ok(v) = self.toks[j + 1].text.parse::<u64>() {
                                self.kind_consts.push(KindConst { name, value: v, line });
                            }
                        }
                        i = j;
                    } else {
                        i += 1;
                    }
                }
                (Tok::Ident, "fn") => {
                    let in_test = !test_stack.is_empty() || pending_test_attr || pending_cfg_test;
                    let impl_type =
                        impl_stack.last().and_then(|(_, ty)| ty.clone());
                    let consumed = self.parse_fn(i, pending_pub, in_test, impl_type);
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    pending_pub = false;
                    i = consumed;
                }
                (Tok::Ident, _) => {
                    // Track file-level HashMap/HashSet bindings by name
                    // (`name: HashMap<…>` fields and `let name = HashMap::…`).
                    self.scan_hash_binding(i);
                    pending_pub = false;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    fn scan_hash_binding(&mut self, i: usize) {
        let t = &self.toks[i];
        if t.text != "HashMap" && t.text != "HashSet" {
            return;
        }
        // `name : HashMap` (field or ascription).
        if i >= 2 && self.toks[i - 1].text == ":" && self.toks[i - 2].kind == Tok::Ident {
            let name = self.toks[i - 2].text.clone();
            if !is_keyword(&name) && !self.hash_vars.contains(&name) {
                self.hash_vars.push(name);
            }
        }
        // `name : & HashMap` / `name : & mut HashMap`.
        if i >= 3
            && (self.toks[i - 1].text == "&" || self.toks[i - 1].text == "mut")
        {
            let mut k = i - 1;
            while k > 0 && (self.toks[k].text == "&" || self.toks[k].text == "mut") {
                k -= 1;
            }
            if k >= 1 && self.toks[k].text == ":" && self.toks[k - 1].kind == Tok::Ident {
                let name = self.toks[k - 1].text.clone();
                if !is_keyword(&name) && !self.hash_vars.contains(&name) {
                    self.hash_vars.push(name);
                }
            }
        }
        // `let [mut] name = HashMap :: …` / `= HashMap :: …`.
        let mut k = i;
        while k > 0 && matches!(self.toks[k - 1].text.as_str(), "=" | "::") {
            k -= 1;
        }
        if k < i && k >= 1 && self.toks[k - 1].kind == Tok::Ident && self.toks[k].text == "=" {
            let name = self.toks[k - 1].text.clone();
            if !is_keyword(&name) && !self.hash_vars.contains(&name) {
                self.hash_vars.push(name);
            }
        }
    }

    /// Parse one `fn` item starting at token `at` (the `fn` keyword).
    /// Returns the token index to continue from.
    fn parse_fn(
        &mut self,
        at: usize,
        is_pub: bool,
        in_test: bool,
        impl_type: Option<String>,
    ) -> usize {
        let toks = self.toks;
        // `fn` must be followed by a name (otherwise it's an `fn(…)`
        // pointer type).
        let Some(name_tok) = toks.get(at + 1) else { return at + 1 };
        if name_tok.kind != Tok::Ident {
            return at + 1;
        }
        let mut f = FnIr {
            name: name_tok.text.clone(),
            line: toks[at].line,
            is_pub,
            in_test,
            impl_type,
            ..FnIr::default()
        };
        let mut j = at + 2;
        if j < toks.len() && toks[j].text == "<" {
            j = skip_generics(toks, j);
        }
        if j >= toks.len() || toks[j].text != "(" {
            return at + 1;
        }
        let params_close = matching(toks, j, "(", ")");
        self.parse_params(&mut f, j + 1, params_close);
        // Skip return type / where clause to the body opener.
        let mut k = params_close + 1;
        while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
            if toks[k].text == "<" {
                k = skip_generics(toks, k);
            } else {
                k += 1;
            }
        }
        if k >= toks.len() || toks[k].text == ";" {
            // Trait method declaration without a body.
            self.fns.push(f);
            return k.min(toks.len().saturating_sub(1)) + 1;
        }
        let body_close = matching(toks, k, "{", "}");
        // Nested `fn` items inside the body are parsed as their own
        // defs and excluded from this body's fact scan.
        let mut nested: Vec<(usize, usize)> = Vec::new();
        let mut b = k + 1;
        while b < body_close {
            if toks[b].kind == Tok::Ident
                && toks[b].text == "fn"
                && b + 1 < toks.len()
                && toks[b + 1].kind == Tok::Ident
            {
                let end = self.parse_fn(b, false, in_test, None);
                nested.push((b, end));
                b = end;
            } else {
                b += 1;
            }
        }
        let mut body: Vec<T> = Vec::with_capacity(body_close - k);
        let mut idx = k;
        while idx <= body_close.min(toks.len() - 1) {
            if let Some(&(_, end)) = nested.iter().find(|&&(s, _)| s == idx) {
                idx = end;
                continue;
            }
            body.push(toks[idx].clone());
            idx += 1;
        }
        f.body = body;
        analyze_body(&mut f);
        self.fns.push(f);
        body_close + 1
    }

    /// Parameter list between token indices `open..close` (exclusive).
    fn parse_params(&self, f: &mut FnIr, open: usize, close: usize) {
        let toks = self.toks;
        let mut depth = 0i32;
        let mut param_start = open;
        let mut params: Vec<(usize, usize)> = Vec::new();
        let mut j = open;
        while j < close {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => {
                    j = skip_generics(toks, j);
                    continue;
                }
                "," if depth == 0 => {
                    params.push((param_start, j));
                    param_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        if param_start < close {
            params.push((param_start, close));
        }
        for (s, e) in params {
            let slice = &toks[s..e];
            if slice.iter().any(|t| t.text == "self") {
                f.has_self = true;
                continue;
            }
            // `name : type…`
            let name = if slice.len() >= 2 && slice[0].kind == Tok::Ident && slice[1].text == ":"
            {
                Some(slice[0].text.clone())
            } else {
                None
            };
            let ty_text: String = slice
                .iter()
                .skip_while(|t| t.text != ":")
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if ty_text.contains("Duration") || ty_text.contains("Instant") {
                f.deadline_bound = true;
            }
            if let Some(n) = name {
                let ln = n.to_ascii_lowercase();
                if ln.contains("timeout") || ln.contains("deadline") || ln.contains("budget") {
                    f.deadline_bound = true;
                }
                if ty_text.contains("& mut") && ty_text.contains("f64") {
                    f.float_mut_params.push(n.clone());
                }
                let bare = ty_text.trim_start_matches(": ").trim();
                if INT_TYPES.contains(&bare) {
                    f.int_vars.push(n.clone());
                }
                if ty_text.contains("HashMap") || ty_text.contains("HashSet") {
                    f.hash_vars.push(n);
                }
            }
        }
    }
}

/// Base identifier of the expression ending at token `end` (inclusive):
/// walks back over `]…[` groups and `.`-chains. For `self.x[i]` returns
/// the first field after `self`.
fn lhs_base(body: &[T], end: usize) -> Option<String> {
    let mut j = end;
    let mut chain: Vec<String> = Vec::new();
    loop {
        let t = body.get(j)?;
        if t.text == "]" {
            // Balance back to the opening bracket.
            let mut depth = 0i32;
            while j > 0 {
                match body[j].text.as_str() {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            j -= 1;
            continue;
        }
        if t.kind == Tok::Ident {
            chain.push(t.text.clone());
            if j >= 1 && body[j - 1].text == "." {
                if j >= 2 {
                    j -= 2;
                    continue;
                }
                return None;
            }
            break;
        }
        if t.text == "*" {
            // Deref on the left: the ident is further right — but we walk
            // right-to-left, so `*` before the ident means we're done.
            break;
        }
        return None;
    }
    chain.reverse();
    let first = chain.first()?;
    if first == "self" {
        chain.get(1).cloned()
    } else {
        Some(first.clone())
    }
}

/// Extract calls, facts, loops, parallel sites, and accumulations from
/// a parsed body.
fn analyze_body(f: &mut FnIr) {
    let body = &f.body;
    let n = body.len();

    // Local integer bindings: `let [mut] x : usize…`, `let n = xs.len()`,
    // `for i in 0..m`.
    for i in 0..n {
        if body[i].text != "let" {
            continue;
        }
        let mut j = i + 1;
        if j < n && body[j].text == "mut" {
            j += 1;
        }
        if j >= n || body[j].kind != Tok::Ident {
            continue;
        }
        let name = body[j].text.clone();
        if j + 2 < n && body[j + 1].text == ":" && INT_TYPES.contains(&body[j + 2].text.as_str())
        {
            f.int_vars.push(name.clone());
        }
        // `= … .len ( )` / `= … .len ( ) …ending with ;` (approximate:
        // any `.len()` before the terminating `;`).
        if j + 1 < n && body[j + 1].text == "=" {
            let mut k = j + 2;
            while k < n && body[k].text != ";" {
                if body[k].text == "len" && k >= 1 && body[k - 1].text == "." {
                    f.int_vars.push(name.clone());
                    break;
                }
                if body[k].text == "HashMap" || body[k].text == "HashSet" {
                    f.hash_vars.push(name.clone());
                    break;
                }
                k += 1;
            }
        }
        if j + 2 < n
            && body[j + 1].text == ":"
            && (body[j + 2].text == "HashMap" || body[j + 2].text == "HashSet")
        {
            f.hash_vars.push(name.clone());
        }
    }

    for i in 0..n {
        let t = &body[i];

        // ---- for loops (also: integer loop vars) ----
        if t.kind == Tok::Ident && t.text == "for" && i + 1 < n {
            // `for pat in expr {`
            let mut j = i + 1;
            let mut pat_idents: Vec<String> = Vec::new();
            while j < n && body[j].text != "in" {
                if body[j].kind == Tok::Ident && !is_keyword(&body[j].text) {
                    pat_idents.push(body[j].text.clone());
                }
                if body[j].text == "{" {
                    break; // not a for-loop shape we understand
                }
                j += 1;
            }
            if j < n && body[j].text == "in" {
                let mut k = j + 1;
                let mut iter_idents = Vec::new();
                let mut saw_range_num = false;
                let mut depth = 0i32;
                while k < n {
                    let tk = &body[k];
                    match tk.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    if tk.kind == Tok::Ident && !is_keyword(&tk.text) {
                        iter_idents.push(tk.text.clone());
                    }
                    if tk.kind == Tok::Num {
                        saw_range_num = true;
                    }
                    k += 1;
                }
                if k < n && body[k].text == "{" {
                    let close = matching(body, k, "{", "}");
                    f.loops.push(ForLoop {
                        line: t.line,
                        iter_idents: iter_idents.clone(),
                        body: (k, close),
                    });
                    // `for i in 0..n` ⇒ i is an integer.
                    if saw_range_num
                        || iter_idents.iter().any(|x| f.int_vars.contains(x))
                    {
                        for p in &pat_idents {
                            f.int_vars.push(p.clone());
                        }
                    }
                }
            }
        }

        if t.kind != Tok::Ident && t.kind != Tok::Punct {
            continue;
        }

        // ---- macros: panic family ----
        if t.kind == Tok::Ident
            && i + 1 < n
            && body[i + 1].text == "!"
            && PANIC_MACROS.contains(&t.text.as_str())
        {
            f.facts.push(Fact::Panic {
                kind: PanicKind::Macro,
                line: t.line,
                what: format!("{}!", t.text),
            });
            continue;
        }

        // ---- calls ----
        if t.kind == Tok::Ident
            && !is_keyword(&t.text)
            && i + 1 < n
            && body[i + 1].text == "("
            && (i == 0 || body[i - 1].text != "fn")
        {
            let method = i >= 1 && body[i - 1].text == ".";
            // Collect `seg ::` qualifiers going backwards.
            let mut qual: Vec<String> = Vec::new();
            if !method {
                let mut j = i;
                while j >= 2
                    && body[j - 1].text == ":"
                    && body[j - 2].text == ":"
                    && adjacent(body, j - 2)
                {
                    if j >= 3 && body[j - 3].kind == Tok::Ident {
                        qual.push(body[j - 3].text.clone());
                        j -= 3;
                    } else if j >= 3 && body[j - 3].text == ">" {
                        // `Foo::<T>::call` — give up on deeper quals.
                        break;
                    } else {
                        break;
                    }
                }
                qual.reverse();
                qual.retain(|q| q != "crate" && q != "super" && q != "self");
            }
            let close = matching(body, i + 1, "(", ")");
            let mut mut_ref_args = Vec::new();
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < close {
                match body[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "&" if depth == 1
                        && k + 2 < n
                        && body[k + 1].text == "mut"
                        && body[k + 2].kind == Tok::Ident =>
                    {
                        mut_ref_args.push(body[k + 2].text.clone());
                    }
                    _ => {}
                }
                k += 1;
            }
            let name = t.text.clone();
            let line = t.line;

            match name.as_str() {
                "unwrap" | "expect" if method => {
                    f.facts.push(Fact::Panic {
                        kind: PanicKind::UnwrapExpect,
                        line,
                        what: format!(".{name}()"),
                    });
                }
                "copy_from_slice" | "clone_from_slice" if method => {
                    f.facts.push(Fact::Panic {
                        kind: PanicKind::CopyFromSlice,
                        line,
                        what: format!(".{name}()"),
                    });
                }
                "set_read_timeout" | "set_write_timeout" | "set_nonblocking" => {
                    let disables = body[i + 1..close]
                        .iter()
                        .any(|a| a.text == "None")
                        && name != "set_nonblocking";
                    f.facts.push(Fact::TimeoutSetter { line, disables });
                }
                _ => {
                    if BLOCKING_NAMES.contains(&name.as_str()) {
                        f.facts.push(Fact::Blocking { name: name.clone(), line });
                    }
                    if PARALLEL_NAMES.contains(&name.as_str()) {
                        f.par_sites.push(ParSite { line, args: (i + 1, close) });
                    }
                }
            }
            f.calls.push(CallIr { name, qual, method, line, mut_ref_args });
            continue;
        }

        // ---- slice indexing ----
        if t.kind == Tok::Punct && t.text == "[" && i >= 1 {
            let prev = &body[i - 1];
            let indexes = match prev.kind {
                Tok::Ident => !is_keyword(&prev.text),
                Tok::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if indexes {
                let close = matching(body, i, "[", "]");
                // `[..]` (full-range) cannot panic; skip it.
                let inner: Vec<&str> =
                    body[i + 1..close].iter().map(|x| x.text.as_str()).collect();
                let full_range = inner.iter().all(|s| *s == ".");
                if !full_range && close > i {
                    f.facts.push(Fact::Panic {
                        kind: PanicKind::SliceIndex,
                        line: t.line,
                        what: format!("{}[…]", prev.text),
                    });
                }
            }
            continue;
        }

        // ---- `+=` accumulation ----
        if t.kind == Tok::Punct
            && t.text == "+"
            && adjacent(body, i)
            && i + 1 < n
            && body[i + 1].text == "="
            && i >= 1
        {
            if let Some(lhs) = lhs_base(body, i - 1) {
                f.accums.push(AccumOp { line: t.line, lhs, at: i });
            }
            continue;
        }

        // ---- integer division / remainder ----
        if t.kind == Tok::Punct && (t.text == "/" || t.text == "%") && i >= 1 && i + 1 < n {
            // Skip `/=`-style compound rhs offset.
            let rhs_at = if body[i + 1].text == "=" && adjacent(body, i) { i + 2 } else { i + 1 };
            let prev_ok = matches!(body[i - 1].kind, Tok::Ident | Tok::Num)
                || body[i - 1].text == ")"
                || body[i - 1].text == "]";
            if prev_ok {
                if let Some(rhs) = body.get(rhs_at) {
                    if rhs.kind == Tok::Ident && f.int_vars.contains(&rhs.text) {
                        f.facts.push(Fact::Panic {
                            kind: PanicKind::IntDivRem,
                            line: t.line,
                            what: format!("{} {}", t.text, rhs.text),
                        });
                    }
                }
            }
            continue;
        }

        // ---- debug-build integer arithmetic (gated by Config) ----
        if t.kind == Tok::Punct
            && (t.text == "+" || t.text == "-" || t.text == "*")
            && i >= 1
            && i + 1 < n
            && body[i + 1].text != "="
            && body[i - 1].kind == Tok::Ident
            && f.int_vars.contains(&body[i - 1].text)
            && (body[i + 1].kind == Tok::Num
                || (body[i + 1].kind == Tok::Ident && f.int_vars.contains(&body[i + 1].text)))
        {
            f.facts.push(Fact::Panic {
                kind: PanicKind::DebugArith,
                line: t.line,
                what: format!("integer `{}`", t.text),
            });
        }
    }

    f.accumulates_into_param =
        f.accums.iter().any(|a| f.float_mut_params.contains(&a.lhs));
}

/// Parse one file into its IR.
pub fn parse_file(rel: &str, src: &str) -> FileIr {
    let toks = significant(src);
    let mut p = Parser { toks: &toks, fns: Vec::new(), kind_consts: Vec::new(), hash_vars: Vec::new() };
    p.parse();
    // Also collect fn-local hash vars into the file set (name-based,
    // matching the legacy rule's file-wide scope).
    let mut hash_vars = p.hash_vars;
    for f in &p.fns {
        for h in &f.hash_vars {
            if !hash_vars.contains(h) {
                hash_vars.push(h.clone());
            }
        }
    }
    FileIr {
        rel: rel.replace('\\', "/"),
        fns: p.fns,
        kind_consts: p.kind_consts,
        hash_vars,
        raw_lines: src.lines().map(|l| l.to_string()).collect(),
    }
}

impl FileIr {
    /// Is line `line` (1-based) waived by `marker` on the same line or
    /// the line above?
    pub fn waived(&self, line: usize, marker: &str) -> bool {
        let idx = line.saturating_sub(1);
        self.raw_lines.get(idx).is_some_and(|l| l.contains(marker))
            || (idx > 0 && self.raw_lines.get(idx - 1).is_some_and(|l| l.contains(marker)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_fn(src: &str) -> FnIr {
        let ir = parse_file("test.rs", src);
        assert_eq!(ir.fns.len(), 1, "expected one fn in {src:?}");
        ir.fns.into_iter().next().unwrap()
    }

    #[test]
    fn signature_summary() {
        let f = one_fn("pub fn g(a: usize, t: Duration, acc: &mut f64) -> f64 { 0.0 }");
        assert!(f.is_pub);
        assert!(f.deadline_bound);
        assert_eq!(f.int_vars, vec!["a"]);
        assert_eq!(f.float_mut_params, vec!["acc"]);
        assert!(!f.has_self);
    }

    #[test]
    fn methods_and_impl_types() {
        let ir = parse_file(
            "t.rs",
            "impl Widget { fn poke(&mut self) { self.count.unwrap(); } }\n\
             impl Display for Widget { fn fmt(&self) {} }",
        );
        assert_eq!(ir.fns.len(), 2);
        assert_eq!(ir.fns[0].impl_type.as_deref(), Some("Widget"));
        assert!(ir.fns[0].has_self);
        assert_eq!(ir.fns[1].impl_type.as_deref(), Some("Widget"));
        assert!(matches!(
            ir.fns[0].facts[..],
            [Fact::Panic { kind: PanicKind::UnwrapExpect, .. }]
        ));
    }

    #[test]
    fn calls_with_quals_and_mut_refs() {
        let f = one_fn(
            "fn f(e: &mut f64) { wire::frame(1, &body); helper(&mut acc); obj.recv(); }",
        );
        let names: Vec<(&str, bool)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.method)).collect();
        assert_eq!(names, vec![("frame", false), ("helper", false), ("recv", true)]);
        assert_eq!(f.calls[0].qual, vec!["wire"]);
        assert_eq!(f.calls[1].mut_ref_args, vec!["acc"]);
        assert!(f
            .facts
            .iter()
            .any(|ft| matches!(ft, Fact::Blocking { name, .. } if name == "recv")));
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let ir = parse_file(
            "t.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn case() {}\n}\n",
        );
        let by_name: Vec<(&str, bool)> =
            ir.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(by_name, vec![("live", false), ("helper", true), ("case", true)]);
    }

    #[test]
    fn index_and_divrem_facts() {
        let f = one_fn("fn f(xs: &[f64], i: usize, n: usize) -> f64 { xs[i] / 2.0 + (8 % n) as f64 }");
        assert!(f
            .facts
            .iter()
            .any(|ft| matches!(ft, Fact::Panic { kind: PanicKind::SliceIndex, .. })));
        assert!(f
            .facts
            .iter()
            .any(|ft| matches!(ft, Fact::Panic { kind: PanicKind::IntDivRem, .. })));
        // `xs[..]` full-range slicing is not a fact.
        let g = one_fn("fn g(xs: &[f64]) -> &[f64] { &xs[..] }");
        assert!(!g
            .facts
            .iter()
            .any(|ft| matches!(ft, Fact::Panic { kind: PanicKind::SliceIndex, .. })));
    }

    #[test]
    fn kind_consts_are_collected() {
        let ir = parse_file(
            "wire.rs",
            "pub mod kind {\n  pub const HELLO: u8 = 1;\n  pub const JOB: u8 = 3;\n}\n",
        );
        let got: Vec<(&str, u64)> =
            ir.kind_consts.iter().map(|k| (k.name.as_str(), k.value)).collect();
        assert_eq!(got, vec![("HELLO", 1), ("JOB", 3)]);
    }

    #[test]
    fn accumulation_into_mut_param_is_detected() {
        let f = one_fn("fn add_into(acc: &mut f64, v: f64) { *acc += v; }");
        assert!(f.accumulates_into_param);
        let g = one_fn("fn local_only(v: f64) -> f64 { let mut s = 0.0; s += v; s }");
        assert!(!g.accumulates_into_param);
    }

    #[test]
    fn timeout_setters_and_disabling() {
        let f = one_fn(
            "fn f(s: &Stream) { s.set_read_timeout(Some(d)); s.set_read_timeout(None); }",
        );
        let setters: Vec<bool> = f
            .facts
            .iter()
            .filter_map(|ft| match ft {
                Fact::TimeoutSetter { disables, .. } => Some(*disables),
                _ => None,
            })
            .collect();
        assert_eq!(setters, vec![false, true]);
    }
}
