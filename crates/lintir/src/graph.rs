//! Workspace loading and call-graph construction.
//!
//! Resolution is name-based (no type inference) and deliberately
//! conservative toward *extern*: an unresolvable call is treated as a
//! call into std/vendored code, which the passes assume non-panicking
//! and bounded. The heuristics and their caveats are documented in
//! DESIGN.md §14.

use crate::ir::{parse_file, FileIr, FnIr};
use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// All parsed files, plus a flat function table the graph indexes into.
pub struct Workspace {
    pub files: Vec<FileIr>,
    /// `(file index, fn index)` for every function, in file order.
    pub fns: Vec<(usize, usize)>,
}

/// Stable handle for a function: index into `Workspace::fns`.
pub type FnId = usize;

impl Workspace {
    /// Parse `(rel_path, source)` pairs. Order is preserved; passes and
    /// baselines sort by path so callers need not pre-sort.
    pub fn from_sources(sources: &[(String, String)]) -> Self {
        let files: Vec<FileIr> =
            sources.iter().map(|(rel, src)| parse_file(rel, src)).collect();
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for gi in 0..f.fns.len() {
                fns.push((fi, gi));
            }
        }
        Workspace { files, fns }
    }

    /// Walk `root` for `.rs` files, skipping build output, VCS metadata,
    /// vendored shims, and test-only trees (`tests/`, `fixtures/`,
    /// `benches/`). Paths are stored root-relative with `/` separators.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut sources = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> =
                std::fs::read_dir(&dir)?.filter_map(|e| e.ok()).collect();
            entries.sort_by_key(|e| e.path());
            for entry in entries {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if path.is_dir() {
                    if matches!(
                        name.as_ref(),
                        "target" | ".git" | "vendor" | "fixtures" | "tests" | "benches"
                            | "related"
                    ) {
                        continue;
                    }
                    stack.push(path);
                } else if name.ends_with(".rs") {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    let src = std::fs::read_to_string(&path)?;
                    sources.push((rel, src));
                }
            }
        }
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Self::from_sources(&sources))
    }

    pub fn fn_ir(&self, id: FnId) -> &FnIr {
        let (fi, gi) = self.fns[id];
        &self.files[fi].fns[gi]
    }

    pub fn file_of(&self, id: FnId) -> &FileIr {
        &self.files[self.fns[id].0]
    }

    /// Crate name for a file path like `crates/core/src/soa.rs` → `core`
    /// (or `xtask` for `xtask/src/…`).
    pub fn crate_of(&self, id: FnId) -> &str {
        crate_of_path(&self.file_of(id).rel)
    }
}

pub fn crate_of_path(rel: &str) -> &str {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, ..] => krate,
        [first, ..] => first,
        [] => "",
    }
}

/// File stem (`crates/cluster/src/wire.rs` → `wire`).
fn stem(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// The resolved workspace call graph: per-function callee edges plus a
/// reverse map for path reconstruction.
pub struct CallGraph {
    /// `callees[f]` = (callee FnId, call-site line) pairs.
    pub callees: Vec<Vec<(FnId, usize)>>,
}

impl CallGraph {
    pub fn build(ws: &Workspace) -> Self {
        // Name → candidate FnIds.
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (id, &(fi, gi)) in ws.fns.iter().enumerate() {
            by_name.entry(ws.files[fi].fns[gi].name.as_str()).or_default().push(id);
        }

        let mut callees: Vec<Vec<(FnId, usize)>> = vec![Vec::new(); ws.fns.len()];
        for (id, &(fi, gi)) in ws.fns.iter().enumerate() {
            let caller = &ws.files[fi].fns[gi];
            let caller_file = &ws.files[fi].rel;
            let caller_crate = crate_of_path(caller_file);
            for call in &caller.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else { continue };
                let resolved = resolve(ws, caller, caller_file, caller_crate, call, cands);
                if let Some(target) = resolved {
                    callees[id].push((target, call.line));
                }
            }
        }
        CallGraph { callees }
    }

    /// Multi-source BFS from `roots`; returns `pred[f] = Some((parent,
    /// line))` spanning-tree entries for every function reachable from a
    /// root (roots have `pred = None` but appear in `dist`).
    pub fn bfs(
        &self,
        roots: &[FnId],
    ) -> (HashMap<FnId, usize>, HashMap<FnId, (FnId, usize)>) {
        let mut dist: HashMap<FnId, usize> = HashMap::new();
        let mut pred: HashMap<FnId, (FnId, usize)> = HashMap::new();
        let mut q = VecDeque::new();
        for &r in roots {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(r) {
                e.insert(0);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            let d = dist[&u];
            for &(v, line) in &self.callees[u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    pred.insert(v, (u, line));
                    q.push_back(v);
                }
            }
        }
        (dist, pred)
    }

    /// Reconstruct the root→`target` call path from a BFS `pred` map as
    /// `file:line fn_name` hops (root first).
    pub fn path_to(
        &self,
        ws: &Workspace,
        pred: &HashMap<FnId, (FnId, usize)>,
        target: FnId,
    ) -> Vec<String> {
        let mut hops = vec![format!(
            "{}:{} {}",
            ws.file_of(target).rel,
            ws.fn_ir(target).line,
            ws.fn_ir(target).name
        )];
        let mut cur = target;
        let mut guard = 0;
        while let Some(&(parent, line)) = pred.get(&cur) {
            hops.push(format!(
                "{}:{} {}",
                ws.file_of(parent).rel,
                line,
                ws.fn_ir(parent).name
            ));
            cur = parent;
            guard += 1;
            if guard > 1000 {
                break;
            }
        }
        hops.reverse();
        hops
    }
}

/// Resolve one call site to a workspace function, or `None` for extern.
fn resolve(
    ws: &Workspace,
    caller: &FnIr,
    caller_file: &str,
    caller_crate: &str,
    call: &crate::ir::CallIr,
    cands: &[FnId],
) -> Option<FnId> {
    // Fully-qualified std paths are extern by construction.
    if let Some(first) = call.qual.first() {
        if matches!(first.as_str(), "std" | "core" | "alloc") {
            return None;
        }
    }

    // `Type::assoc(…)` / `Self::assoc(…)`: match candidates by impl type.
    if let Some(last) = call.qual.last() {
        let type_name = if last == "Self" {
            caller.impl_type.clone()
        } else if last.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            Some(last.clone())
        } else {
            None
        };
        if let Some(ty) = type_name {
            let matched: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&c| ws.fn_ir(c).impl_type.as_deref() == Some(ty.as_str()))
                .collect();
            return pick(ws, &matched, caller_file, caller_crate);
        }
        // Lowercase qualifier: module path — prefer a file whose stem or
        // crate matches any qualifier segment.
        let matched: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let rel = &ws.file_of(c).rel;
                call.qual.iter().any(|q| stem(rel) == q || crate_of_path(rel) == q)
            })
            .collect();
        return pick(ws, &matched, caller_file, caller_crate);
    }

    if call.method {
        // Method call: candidates must take self. Without receiver types
        // a unique self-taking candidate is accepted; ambiguity across
        // multiple impls stays unresolved (extern) rather than guessing
        // between unrelated types.
        let matched: Vec<FnId> =
            cands.iter().copied().filter(|&c| ws.fn_ir(c).has_self).collect();
        if matched.len() == 1 {
            return Some(matched[0]);
        }
        // Same-file tiebreak is safe enough: a file rarely has two
        // same-named methods on different types.
        let local: Vec<FnId> = matched
            .iter()
            .copied()
            .filter(|&c| ws.file_of(c).rel == caller_file)
            .collect();
        if local.len() == 1 {
            return Some(local[0]);
        }
        return None;
    }

    // Unqualified free call: prefer free functions (no self).
    let free: Vec<FnId> =
        cands.iter().copied().filter(|&c| !ws.fn_ir(c).has_self).collect();
    pick(ws, &free, caller_file, caller_crate)
}

/// Among `matched` candidates prefer same-file, then same-crate, then a
/// unique remaining candidate; ambiguity resolves to extern (`None`).
fn pick(
    ws: &Workspace,
    matched: &[FnId],
    caller_file: &str,
    caller_crate: &str,
) -> Option<FnId> {
    if matched.is_empty() {
        return None;
    }
    if matched.len() == 1 {
        return Some(matched[0]);
    }
    let same_file: Vec<FnId> = matched
        .iter()
        .copied()
        .filter(|&c| ws.file_of(c).rel == caller_file)
        .collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    let same_crate: Vec<FnId> = matched
        .iter()
        .copied()
        .filter(|&c| ws.crate_of(c) == caller_crate)
        .collect();
    if same_crate.len() == 1 {
        return Some(same_crate[0]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> =
            sources.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        Workspace::from_sources(&owned)
    }

    fn fn_id(w: &Workspace, name: &str) -> FnId {
        (0..w.fns.len()).find(|&i| w.fn_ir(i).name == name).unwrap()
    }

    #[test]
    fn cross_crate_module_calls_resolve() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper::deep(); }"),
            ("crates/a/src/helper.rs", "pub fn deep() { other() }"),
            ("crates/b/src/lib.rs", "pub fn other() {}"),
        ]);
        let g = CallGraph::build(&w);
        let entry = fn_id(&w, "entry");
        let deep = fn_id(&w, "deep");
        let other = fn_id(&w, "other");
        assert_eq!(g.callees[entry], vec![(deep, 1)]);
        assert_eq!(g.callees[deep], vec![(other, 1)]);
    }

    #[test]
    fn assoc_fn_resolution_by_impl_type() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "struct A; impl A { pub fn new() -> A { A } }\n\
                 struct B; impl B { pub fn new() -> B { B } }\n\
                 fn make() { let _ = A::new(); }",
            ),
        ]);
        let g = CallGraph::build(&w);
        let make = fn_id(&w, "make");
        assert_eq!(g.callees[make].len(), 1);
        let (target, _) = g.callees[make][0];
        assert_eq!(w.fn_ir(target).impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn std_paths_are_extern() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f() { std::mem::drop(1); } fn drop(_x: i32) {}",
        )]);
        let g = CallGraph::build(&w);
        let f = fn_id(&w, "f");
        assert!(g.callees[f].is_empty());
    }

    #[test]
    fn ambiguous_methods_stay_extern() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl X { fn go(&self) {} } impl Y { fn go(&self) {} }",
        ), (
            "crates/b/src/lib.rs",
            "fn f(v: &V) { v.go(); }",
        )]);
        let g = CallGraph::build(&w);
        let f = fn_id(&w, "f");
        assert!(g.callees[f].is_empty());
    }

    #[test]
    fn bfs_paths_reconstruct() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}"),
        ]);
        let g = CallGraph::build(&w);
        let root = fn_id(&w, "root");
        let leaf = fn_id(&w, "leaf");
        let (dist, pred) = g.bfs(&[root]);
        assert_eq!(dist[&leaf], 2);
        let path = g.path_to(&w, &pred, leaf);
        assert_eq!(path.len(), 3);
        assert!(path[0].contains("root"));
        assert!(path[2].contains("leaf"));
    }
}
