//! A real Rust lexer (spans, not regexes).
//!
//! The token stream is **total**: every byte of the input belongs to
//! exactly one token, tokens appear in source order, and their spans
//! tile `0..src.len()` with no gaps or overlaps — a property the
//! proptest suite enforces on arbitrary inputs and on the whole
//! workspace. Nothing here panics on malformed input; unterminated
//! literals and comments simply extend to end-of-input and stray bytes
//! become [`Tok::Unknown`].
//!
//! The lexer understands the parts of the language the old line-based
//! `strip_source` mishandled:
//!
//! * raw strings with any number of hashes (`r"…"`, `r##"…"##`) and the
//!   byte variants (`b"…"`, `br#"…"#`);
//! * nested block comments (`/* /* */ */`), including across lines;
//! * lifetimes vs char literals (`'a` vs `'a'` vs `'\''` vs `b'x'`);
//! * raw identifiers (`r#match`);
//! * multi-line (non-raw) string literals.

/// Token kind. Multi-character operators are emitted as adjacent
/// single-character [`Tok::Punct`] tokens; consumers that care about
/// `+=`/`::`/`->` check span adjacency (see [`Token`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Whitespace run.
    Ws,
    /// `// …` to end of line (newline not included).
    LineComment,
    /// `/* … */`, nesting honored; unterminated runs to end of input.
    BlockComment,
    /// `"…"` or `b"…"`, escapes honored, may span lines.
    Str,
    /// `r"…"` / `r#"…"#` / `br##"…"##`; closes only on quote + same
    /// number of hashes.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`.
    Char,
    /// `'a`, `'static`, `'_` — a tick with no closing quote.
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// Integer or float literal (prefix/suffix included).
    Num,
    /// One ASCII punctuation character.
    Punct,
    /// Anything else (stray quote, lone backslash, non-ASCII symbol).
    Unknown,
}

/// One token: kind plus byte span (`start..end` into the source).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a str,
    /// (byte offset, char) pairs; index space for the scan.
    chars: Vec<(usize, char)>,
    i: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of char index `i` (source length past the end).
    fn byte_at(&self, i: usize) -> usize {
        self.chars.get(i).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Try to lex a raw-string body starting at the hashes (char index
    /// `hash_start` points at the first `#` or the opening quote).
    /// Returns true (and advances past the closing quote+hashes, or to
    /// end of input) iff this really is a raw string.
    fn raw_string_from(&mut self, hash_start: usize) -> bool {
        let mut hashes = 0;
        let mut j = hash_start;
        while self.chars.get(j).map(|&(_, c)| c) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j).map(|&(_, c)| c) != Some('"') {
            return false;
        }
        // Body: scan for `"` followed by `hashes` hashes.
        j += 1;
        while j < self.chars.len() {
            if self.chars[j].1 == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.chars.get(j + 1 + k).map(|&(_, c)| c) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.i = j + 1 + hashes;
                    return true;
                }
            }
            j += 1;
        }
        self.i = self.chars.len(); // unterminated: runs to EOF
        true
    }

    /// Non-raw string body: `self.i` points at the opening quote.
    fn string(&mut self) {
        self.i += 1;
        while self.i < self.chars.len() {
            match self.chars[self.i].1 {
                '\\' => self.i = (self.i + 2).min(self.chars.len()),
                '"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Char literal with escape: `self.i` points at the tick, next is
    /// `\`. Consumes through the closing tick (or end of line/input for
    /// malformed literals).
    fn escaped_char(&mut self) {
        self.i += 2; // tick + backslash
        if self.i < self.chars.len() {
            self.i += 1; // the escaped character itself ('\'' => the quote)
        }
        // `\u{…}` and malformed tails: scan to the closing tick, but
        // never across a newline (a lone `'\` shouldn't eat the file).
        while self.i < self.chars.len() {
            match self.chars[self.i].1 {
                '\'' => {
                    self.i += 1;
                    return;
                }
                '\n' => return,
                _ => self.i += 1,
            }
        }
    }

    fn next_kind(&mut self) -> Tok {
        let c = self.chars[self.i].1;
        let c1 = self.peek(1);

        if c.is_whitespace() {
            while self.i < self.chars.len() && self.chars[self.i].1.is_whitespace() {
                self.i += 1;
            }
            return Tok::Ws;
        }
        if c == '/' && c1 == Some('/') {
            while self.i < self.chars.len() && self.chars[self.i].1 != '\n' {
                self.i += 1;
            }
            return Tok::LineComment;
        }
        if c == '/' && c1 == Some('*') {
            self.i += 2;
            let mut depth = 1usize;
            while self.i < self.chars.len() && depth > 0 {
                let d = self.chars[self.i].1;
                let d1 = self.peek(1);
                if d == '*' && d1 == Some('/') {
                    depth -= 1;
                    self.i += 2;
                } else if d == '/' && d1 == Some('*') {
                    depth += 1;
                    self.i += 2;
                } else {
                    self.i += 1;
                }
            }
            return Tok::BlockComment;
        }
        // Raw strings and byte strings, checked before identifiers so
        // the `r`/`b` prefix doesn't lex as an ident.
        if c == 'r' && matches!(c1, Some('"') | Some('#')) {
            let save = self.i;
            if self.raw_string_from(save + 1) {
                return Tok::RawStr;
            }
            // `r#ident` (raw identifier) or plain `r` ident: fall through.
        }
        if c == 'b' {
            match c1 {
                Some('"') => {
                    self.i += 1;
                    self.string();
                    return Tok::Str;
                }
                Some('r') if matches!(self.peek(2), Some('"') | Some('#')) => {
                    let save = self.i;
                    if self.raw_string_from(save + 2) {
                        return Tok::RawStr;
                    }
                }
                Some('\'') => {
                    // Byte char literal: b'x' or b'\n'.
                    if self.peek(2) == Some('\\') {
                        self.i += 1;
                        self.escaped_char();
                    } else {
                        // b'x' — consume b, tick, one char, closing tick.
                        self.i += 3;
                        if self.i < self.chars.len() && self.chars[self.i].1 == '\'' {
                            self.i += 1;
                        }
                    }
                    return Tok::Char;
                }
                _ => {}
            }
        }
        if c == '"' {
            self.string();
            return Tok::Str;
        }
        if c == '\'' {
            match c1 {
                Some('\\') => {
                    self.escaped_char();
                    return Tok::Char;
                }
                Some(n) if is_ident_start(n) => {
                    if self.peek(2) == Some('\'') {
                        self.i += 3; // 'a'
                        return Tok::Char;
                    }
                    // Lifetime: tick + ident chars, no closing quote.
                    self.i += 2;
                    while self.i < self.chars.len() && is_ident_continue(self.chars[self.i].1) {
                        self.i += 1;
                    }
                    return Tok::Lifetime;
                }
                Some(_) if self.peek(2) == Some('\'') => {
                    self.i += 3; // '0', '{', '✓'
                    return Tok::Char;
                }
                _ => {
                    self.i += 1; // stray tick
                    return Tok::Unknown;
                }
            }
        }
        // Raw identifier `r#foo` (the raw-string branch above already
        // rejected `r#"`).
        if c == 'r' && c1 == Some('#') && self.peek(2).is_some_and(is_ident_start) {
            self.i += 2;
            while self.i < self.chars.len() && is_ident_continue(self.chars[self.i].1) {
                self.i += 1;
            }
            return Tok::Ident;
        }
        if is_ident_start(c) {
            while self.i < self.chars.len() && is_ident_continue(self.chars[self.i].1) {
                self.i += 1;
            }
            return Tok::Ident;
        }
        if c.is_ascii_digit() {
            self.i += 1;
            // Radix prefix eats alphanumerics wholesale (0xFF_u32, 0b01).
            if c == '0' && matches!(self.peek(0), Some('x') | Some('o') | Some('b')) {
                self.i += 1;
                while self.i < self.chars.len()
                    && (is_ident_continue(self.chars[self.i].1) || self.chars[self.i].1 == '_')
                {
                    self.i += 1;
                }
                return Tok::Num;
            }
            while self.i < self.chars.len()
                && (self.chars[self.i].1.is_ascii_digit() || self.chars[self.i].1 == '_')
            {
                self.i += 1;
            }
            // Fractional part only when a digit follows the dot, so
            // `0..n` stays Num Punct Punct Ident.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.i += 2;
                while self.i < self.chars.len()
                    && (self.chars[self.i].1.is_ascii_digit() || self.chars[self.i].1 == '_')
                {
                    self.i += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                    self.i += digit_at + 1;
                    while self.i < self.chars.len() && self.chars[self.i].1.is_ascii_digit() {
                        self.i += 1;
                    }
                }
            }
            // Type suffix (u32, f64, usize).
            while self.i < self.chars.len() && is_ident_continue(self.chars[self.i].1) {
                self.i += 1;
            }
            return Tok::Num;
        }
        if c.is_ascii_punctuation() {
            self.i += 1;
            return Tok::Punct;
        }
        self.i += 1;
        Tok::Unknown
    }
}

/// Lex `src` into a total, tiling token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src, chars: src.char_indices().collect(), i: 0 };
    let mut out = Vec::new();
    while lx.i < lx.chars.len() {
        let start_i = lx.i;
        let start = lx.byte_at(start_i);
        let kind = lx.next_kind();
        debug_assert!(lx.i > start_i, "lexer must always make progress");
        let end = lx.byte_at(lx.i);
        out.push(Token { kind, start, end });
    }
    out
}

/// `src` as lines with comment and string/char literal *contents*
/// blanked to spaces (line structure and column positions preserved),
/// so token-level rules see only code. Lifetimes are kept verbatim.
///
/// This is the lexer-backed replacement for the old hand-rolled state
/// machine in `xtask`: raw strings with hashes, `'a` lifetime ticks vs
/// `'\''` char literals, byte strings, nested block comments, and
/// multi-line strings are all handled by construction.
pub fn strip_source(src: &str) -> Vec<String> {
    let mut out = String::with_capacity(src.len());
    for t in lex(src) {
        match t.kind {
            Tok::Str | Tok::RawStr | Tok::Char | Tok::LineComment | Tok::BlockComment => {
                for c in t.text(src).chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(t.text(src)),
        }
    }
    let mut lines: Vec<String> = out
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l).to_string())
        .collect();
    // Match `str::lines`: a trailing newline does not create an empty
    // final line.
    if src.ends_with('\n') {
        lines.pop();
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Tok, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != Tok::Ws)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn spans_tile_simple_source() {
        let src = "fn main() { let x = 1 + 2; }";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos);
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"has "quotes" and # inside"##; x"####;
        let k = kinds(src);
        assert!(k.contains(&(Tok::RawStr, r###"r##"has "quotes" and # inside"##"###)));
        assert_eq!(k.last().unwrap(), &(Tok::Ident, "x"));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let k = kinds(r##"let a = b"bytes"; let c = br#"raw "b" str"#; y"##);
        assert!(k.contains(&(Tok::Str, "b\"bytes\"")));
        assert!(k.contains(&(Tok::RawStr, r##"br#"raw "b" str"#"##)));
        assert_eq!(k.last().unwrap(), &(Tok::Ident, "y"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(k.contains(&(Tok::Lifetime, "'a")));
        assert!(k.contains(&(Tok::Char, "'x'")));

        let k = kinds(r"let q = '\''; let nl = '\n'; let u = '\u{1F600}'; z");
        assert!(k.contains(&(Tok::Char, r"'\''")));
        assert!(k.contains(&(Tok::Char, r"'\n'")));
        assert!(k.contains(&(Tok::Char, r"'\u{1F600}'")));
        assert_eq!(k.last().unwrap(), &(Tok::Ident, "z"));

        let k = kinds("b'x'");
        assert_eq!(k, vec![(Tok::Char, "b'x'")]);

        let k = kinds("'static");
        assert_eq!(k, vec![(Tok::Lifetime, "'static")]);
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            k,
            vec![
                (Tok::Ident, "a"),
                (Tok::BlockComment, "/* outer /* inner */ still outer */"),
                (Tok::Ident, "b"),
            ]
        );
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#match = 1;");
        assert!(k.contains(&(Tok::Ident, "r#match")));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let k = kinds("for i in 0..10 { a[i] }");
        assert!(k.contains(&(Tok::Num, "0")));
        assert!(k.contains(&(Tok::Num, "10")));
        let k = kinds("1.5e-3f64 0xFF_u32 1_000");
        assert_eq!(
            k,
            vec![(Tok::Num, "1.5e-3f64"), (Tok::Num, "0xFF_u32"), (Tok::Num, "1_000")]
        );
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"unterminated", "r#\"unterminated", "/* unterminated", "'\\", "'"] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().end, src.len(), "input {src:?}");
        }
    }

    #[test]
    fn strip_blanks_comments_and_strings_preserving_columns() {
        let src = "let s = \"panic!()\"; // .unwrap()\nlet t = 1;\n";
        let lines = strip_source(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("panic!"));
        assert!(!lines[0].contains("unwrap"));
        assert_eq!(lines[0].len(), src.lines().next().unwrap().len());
        assert_eq!(lines[1], "let t = 1;");
    }

    #[test]
    fn strip_handles_multiline_strings() {
        let src = "let s = \"line one\ncontains .unwrap() here\"; real_code();";
        let lines = strip_source(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[1].contains("unwrap"));
        assert!(lines[1].contains("real_code"));
    }
}
