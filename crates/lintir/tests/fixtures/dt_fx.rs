//! DT fixture: determinism dataflow.

pub fn hash_loop(m: &HashMap<u32, f64>) -> f64 {
    let mut s = 0.0;
    for (_k, v) in m.iter() {
        s += v; // FLAG DT001 line 6
    }
    s
}

pub fn hash_chain(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() // FLAG DT001 line 12
}

pub fn pool_float(pool: &Pool) -> f64 {
    let mut e = 0.0;
    pool.run(|| {
        e += 1.0; // FLAG DT002 line 18
    });
    e
}

pub fn add_into(acc: &mut f64, v: f64) {
    *acc += v;
}

pub fn pool_indirect(pool: &Pool) -> f64 {
    let mut e = 0.0;
    pool.run(|| add_into(&mut e, 1.0)); // FLAG DT002 line 29
    e
}

pub fn pool_local_ok(pool: &Pool) {
    pool.run(|chunk| {
        let mut cursor = 0;
        cursor += 1; // precision: closure-local integer bookkeeping
    });
}

pub fn hash_waived(m: &HashMap<u32, f64>) -> f64 {
    let mut s = 0.0;
    // DETERMINISM-OK: fixture waiver — tests assert this is honored.
    for (_k, v) in m.iter() {
        s += v;
    }
    s
}
