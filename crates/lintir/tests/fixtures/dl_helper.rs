//! DL fixture: helper reached from the entry zone.

pub fn blind_read(stream: &mut TcpStream) {
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf); // FLAG DL001 line 5 — via outer()
}

pub fn bounded_read(stream: &mut TcpStream, deadline: Instant) {
    stream.read_exact(&mut buf2);
}
