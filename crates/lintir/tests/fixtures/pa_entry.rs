//! PA fixture: the no-panic entry zone (clean in itself).

pub fn driver() {
    helper_unwrap();
    helper_macro_waived();
    helper_macro();
    deep_entry();
}

fn deep_entry() {
    helper_chain();
}
