//! DL fixture: deadline-boundedness entry zone.

pub fn pump(rx: &Receiver) {
    rx.recv(); // FLAG DL001 line 4 — blind recv
}

pub fn pump_bounded(rx: &Receiver, timeout: Duration) {
    rx.recv(); // bounded: the caller supplied a timeout
}

pub fn disabler(s: &TcpStream) {
    s.set_read_timeout(None); // FLAG DL002 line 12
}

pub fn pump_waived(rx: &Receiver) {
    // DEADLINE-OK: fixture waiver — tests assert this is honored.
    rx.recv();
}

pub fn outer() {
    blind_read();
}

pub fn setter_first(s: &TcpStream) {
    s.set_read_timeout(Some(d));
    s.read(); // bounded: timeout set earlier in the same fn
}
