//! WP fixture: wire-protocol totality.

pub mod kind {
    pub const BOTH: u8 = 1;
    pub const ENC_ONLY: u8 = 2; // FLAG WP001 line 5
    pub const DEC_ONLY: u8 = 3; // FLAG WP002 line 6
    // WIRE-OK: fixture waiver — tests assert this is honored.
    pub const WAIVED: u8 = 4;
}

pub fn send(e: &mut Enc) {
    frame(kind::BOTH);
    frame(kind::ENC_ONLY);
}

pub fn recv_frame(k: u8) {
    match k {
        kind::BOTH => {}
        kind::DEC_ONLY => {}
        _ => {}
    }
}

pub fn put_mode(e: &mut Enc, m: Mode) {
    e.put_u8(match m { Mode::A => 0, Mode::B => 1, Mode::C => 2 }); // FLAG WP003 tag 2
}

pub fn get_mode(d: &mut Dec) -> u8 {
    match d.get_u8() {
        0 => 0,
        1 => 1,
        9 => 9, // FLAG WP004 tag 9
        _ => 0,
    }
}
