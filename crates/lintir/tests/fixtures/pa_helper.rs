//! PA fixture: helpers reached (or not) from the no-panic zone.

pub fn helper_unwrap() {
    maybe().unwrap(); // FLAG PA002 line 4
}

pub fn helper_macro_waived() {
    // PANIC-OK: fixture waiver — tests assert this is honored.
    panic!("waived");
}

pub fn helper_chain() {
    inner(&mut [0u8; 2], &[1u8, 2]);
}

fn inner(buf: &mut [u8], src: &[u8]) {
    buf.copy_from_slice(src); // FLAG PA005 line 17
    let n = src.len();
    let _ = buf.len() % n; // FLAG PA004 line 19
    let _ = src[0]; // FLAG PA003 line 20
}

fn maybe() -> Option<u8> {
    None
}

pub fn unreached() {
    maybe().unwrap(); // precision: not reachable from the zone, no finding
}

fn helper_macro() {
    unreachable!(); // FLAG PA001 line 32
}
