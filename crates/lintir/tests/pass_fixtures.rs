//! Fixture suite for the four interprocedural passes.
//!
//! The fixtures live under `tests/fixtures/` (a directory both the
//! legacy linter and [`Workspace::load`] skip, so the intentionally
//! broken code never trips the real gates). Every expected finding is
//! asserted with its exact code, file, and line; every deliberate
//! negative (waiver, precision case) is asserted absent.

use lintir::graph::Workspace;
use lintir::passes::{analyze, Config};
use lintir::Diagnostic;

const PA_ENTRY: &str = include_str!("fixtures/pa_entry.rs");
const PA_HELPER: &str = include_str!("fixtures/pa_helper.rs");
const DL_ENTRY: &str = include_str!("fixtures/dl_entry.rs");
const DL_HELPER: &str = include_str!("fixtures/dl_helper.rs");
const WIRE_FX: &str = include_str!("fixtures/wire_fx.rs");
const DT_FX: &str = include_str!("fixtures/dt_fx.rs");

fn fixture_diags() -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = [
        ("pa_entry.rs", PA_ENTRY),
        ("pa_helper.rs", PA_HELPER),
        ("dl_entry.rs", DL_ENTRY),
        ("dl_helper.rs", DL_HELPER),
        ("wire_fx.rs", WIRE_FX),
        ("dt_fx.rs", DT_FX),
    ]
    .iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect();
    let ws = Workspace::from_sources(&sources);
    let cfg = Config {
        no_panic_files: vec!["pa_entry.rs".into()],
        entry_files: vec!["dl_entry.rs".into()],
        wire_files: vec!["wire_fx.rs".into()],
        blessed_float_files: Vec::new(),
        debug_arith: false,
    };
    analyze(&ws, &cfg)
}

fn by_code<'a>(diags: &'a [Diagnostic], prefix: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.code.starts_with(prefix)).collect()
}

fn keys(diags: &[&Diagnostic]) -> Vec<(String, String, usize)> {
    diags
        .iter()
        .map(|d| (d.code.to_string(), d.file.clone(), d.line))
        .collect()
}

#[test]
fn panic_reachability_exact_findings() {
    let diags = fixture_diags();
    let pa = by_code(&diags, "PA");
    assert_eq!(
        keys(&pa),
        vec![
            ("PA002".into(), "pa_helper.rs".into(), 4),
            ("PA005".into(), "pa_helper.rs".into(), 17),
            ("PA004".into(), "pa_helper.rs".into(), 19),
            ("PA003".into(), "pa_helper.rs".into(), 20),
            ("PA001".into(), "pa_helper.rs".into(), 32),
        ],
        "PA findings: {pa:#?}"
    );
    // The transitive unwrap carries the full call path from the root.
    let unwrap = pa.iter().find(|d| d.code == "PA002").unwrap();
    assert_eq!(unwrap.func, "helper_unwrap");
    assert!(!unwrap.path.is_empty());
    assert!(unwrap.path[0].contains("driver"), "path: {:?}", unwrap.path);
    assert!(unwrap.path.last().unwrap().contains("helper_unwrap"));
    // Two-call-deep helper chain: deep_entry -> helper_chain -> inner.
    let slice = pa.iter().find(|d| d.code == "PA003").unwrap();
    assert_eq!(slice.func, "inner");
    assert_eq!(slice.anchor, "src[…]");
    assert_eq!(slice.path.len(), 3, "path: {:?}", slice.path);
    assert!(slice.path[0].contains("deep_entry"));
    assert!(slice.path[1].contains("helper_chain"));
}

#[test]
fn panic_waiver_and_unreachable_precision() {
    let diags = fixture_diags();
    // `helper_macro_waived` has a `// PANIC-OK:` above its panic!.
    assert!(
        !diags.iter().any(|d| d.file == "pa_helper.rs" && d.line == 9),
        "waived panic! must not be reported"
    );
    // `unreached` unwraps but is not reachable from the no-panic zone.
    assert!(
        !diags.iter().any(|d| d.file == "pa_helper.rs" && d.line == 28),
        "unreachable fn must not be reported"
    );
}

#[test]
fn deadline_exact_findings() {
    let diags = fixture_diags();
    let dl = by_code(&diags, "DL");
    assert_eq!(
        keys(&dl),
        vec![
            ("DL001".into(), "dl_entry.rs".into(), 4),
            ("DL002".into(), "dl_entry.rs".into(), 12),
            ("DL001".into(), "dl_helper.rs".into(), 5),
        ],
        "DL findings: {dl:#?}"
    );
    let blind = dl.iter().find(|d| d.file == "dl_entry.rs" && d.code == "DL001").unwrap();
    assert_eq!(blind.func, "pump");
    assert_eq!(blind.anchor, "recv");
    assert!(blind.path.is_empty(), "root-level finding needs no path");
    // The helper is one call away; the path names the entry point.
    let reached = dl.iter().find(|d| d.file == "dl_helper.rs").unwrap();
    assert_eq!(reached.func, "blind_read");
    assert_eq!(reached.anchor, "read_exact");
    assert!(reached.path[0].contains("outer"), "path: {:?}", reached.path);
}

#[test]
fn deadline_negatives() {
    let diags = fixture_diags();
    // timeout param bounds pump_bounded (line 8); waiver covers line 17;
    // setter_first sets a timeout before reading (line 26).
    for line in [8, 17, 26] {
        assert!(
            !diags.iter().any(|d| d.file == "dl_entry.rs" && d.line == line),
            "dl_entry.rs:{line} must be clean"
        );
    }
}

#[test]
fn wire_totality_exact_findings() {
    let diags = fixture_diags();
    let wp = by_code(&diags, "WP");
    assert_eq!(
        keys(&wp),
        vec![
            ("WP001".into(), "wire_fx.rs".into(), 5),
            ("WP002".into(), "wire_fx.rs".into(), 6),
            ("WP003".into(), "wire_fx.rs".into(), 24),
            ("WP004".into(), "wire_fx.rs".into(), 28),
        ],
        "WP findings: {wp:#?}"
    );
    assert_eq!(wp[0].anchor, "ENC_ONLY");
    assert_eq!(wp[1].anchor, "DEC_ONLY");
    assert_eq!(wp[2].anchor, "tag 2");
    assert_eq!(wp[2].func, "put_mode");
    assert_eq!(wp[3].anchor, "tag 9");
    assert_eq!(wp[3].func, "get_mode");
    // BOTH (line 4) is total; WAIVED (line 8) carries a WIRE-OK.
    assert!(!diags.iter().any(|d| d.file == "wire_fx.rs" && (d.line == 4 || d.line == 8)));
}

#[test]
fn determinism_exact_findings() {
    let diags = fixture_diags();
    let dt = by_code(&diags, "DT");
    assert_eq!(
        keys(&dt),
        vec![
            ("DT001".into(), "dt_fx.rs".into(), 6),
            ("DT001".into(), "dt_fx.rs".into(), 12),
            ("DT002".into(), "dt_fx.rs".into(), 18),
            ("DT002".into(), "dt_fx.rs".into(), 29),
        ],
        "DT findings: {dt:#?}"
    );
    assert_eq!(dt[0].func, "hash_loop");
    assert!(dt[1].anchor.contains("sum"), "anchor: {}", dt[1].anchor);
    assert_eq!(dt[2].func, "pool_float");
    // Indirect accumulation through `add_into(&mut e, …)`.
    assert!(dt[3].anchor.contains("add_into"), "anchor: {}", dt[3].anchor);
}

#[test]
fn determinism_negatives() {
    let diags = fixture_diags();
    // pool_local_ok: closure-local integer bookkeeping (lines 33-38);
    // hash_waived: DETERMINISM-OK above the loop (lines 40-47).
    assert!(
        !diags.iter().any(|d| d.file == "dt_fx.rs" && d.line >= 33),
        "precision/waiver cases must be clean: {:#?}",
        by_code(&diags, "DT")
    );
}

#[test]
fn fixture_total_is_pinned() {
    // Guards against silent new findings creeping into the fixtures.
    assert_eq!(fixture_diags().len(), 16);
}
