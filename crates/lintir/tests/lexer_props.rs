//! Property tests for the total lexer: it must never panic, its token
//! spans must exactly tile the input, and concatenating token texts
//! must reproduce the source byte-for-byte — including on every real
//! file in this workspace.

use lintir::lex::{lex, strip_source};
use proptest::prelude::*;

/// Fragments chosen to collide lexer states: raw-string fences, block
/// comment openers/closers, escapes, lifetimes vs char literals,
/// multi-byte UTF-8, and unterminated openers.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "r#\"",
    "\"#",
    "r##\"x\"##",
    "\"",
    "\\\"",
    "\\\\",
    "/*",
    "*/",
    "/* /* */",
    "//",
    "\n",
    "'a",
    "'a'",
    "'\\n'",
    "'static",
    "b\"bytes\"",
    "br#\"raw\"#",
    "ident",
    "0x1f_u32",
    "1.5e-3",
    "::",
    "=>",
    "+=",
    "é",
    "名",
    " ",
    "\t",
    "#",
    "r\"",
    "'",
];

fn assemble(idxs: Vec<usize>) -> String {
    idxs.into_iter().map(|i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

fn assert_tiles(src: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        assert!(src.get(t.start..t.end).is_some(), "non-boundary span in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover {src:?}");
}

fn assert_round_trips(src: &str) {
    let toks = lex(src);
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_and_spans_tile(idxs in prop::collection::vec(0usize..64, 0usize..40)) {
        let src = assemble(idxs);
        assert_tiles(&src);
    }

    #[test]
    fn token_texts_round_trip(idxs in prop::collection::vec(0usize..64, 0usize..40)) {
        let src = assemble(idxs);
        assert_round_trips(&src);
    }

    #[test]
    // 1.. — on "" strip_source yields one empty line where str::lines
    // yields none (matching the legacy linter's behavior).
    fn strip_preserves_line_structure(idxs in prop::collection::vec(0usize..64, 1usize..40)) {
        let src = assemble(idxs);
        let stripped = strip_source(&src);
        prop_assert_eq!(stripped.len(), src.lines().count());
        for (raw, clean) in src.lines().zip(&stripped) {
            prop_assert_eq!(raw.chars().count(), clean.chars().count());
        }
    }
}

/// Every `.rs` file in the repository must lex losslessly.
#[test]
fn workspace_sources_round_trip() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut stack = vec![root.join("crates"), root.join("xtask/src"), root.join("vendor")];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let src = std::fs::read_to_string(&p).unwrap();
                let toks = lex(&src);
                let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
                assert_eq!(rebuilt, src, "lossy lex of {}", p.display());
                assert_tiles(&src);
                seen += 1;
            }
        }
    }
    assert!(seen > 40, "workspace walk found only {seen} files");
}
