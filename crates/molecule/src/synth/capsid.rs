//! Icosahedral virus-capsid shell generator.
//!
//! Stands in for the paper's Cucumber Mosaic Virus shell (509,640 atoms,
//! §V.F) and Blue Tongue Virus (6M atoms, §V.B). A capsid is a hollow
//! spherical shell of protein subunits: geometrically, atoms fill a
//! spherical annulus `[R - t/2, R + t/2]` at protein density, with surface
//! bumps breaking the perfect sphere (capsomer lumps). The *hollow-shell*
//! geometry is what matters for the algorithms — it maximizes the
//! surface-to-volume ratio, which is exactly the regime where the
//! surface-based r⁶ octree method shines.

use super::{random_normal, HEAVY_ATOM_DENSITY};
use crate::atom::Atom;
use crate::elements::sample_heavy_element;
use crate::molecule::Molecule;
use polaroct_geom::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Tunables for [`capsid`].
#[derive(Clone, Copy, Debug)]
pub struct CapsidParams {
    /// Shell thickness (Å). CMV's capsid is ~25–35 Å thick.
    pub thickness: f64,
    /// Interior density (heavy atoms / Å³).
    pub density: f64,
    /// Relative amplitude of capsomer surface bumps (0 = smooth sphere).
    pub lumpiness: f64,
}

impl Default for CapsidParams {
    fn default() -> Self {
        CapsidParams { thickness: 28.0, density: HEAVY_ATOM_DENSITY, lumpiness: 0.04 }
    }
}

/// Generate a hollow capsid shell with exactly `n_atoms` atoms.
///
/// The mean shell radius is derived from `n_atoms`, thickness and density:
/// `n = ρ · 4πR²t  ⇒  R = sqrt(n / (4π t ρ))`. For CMV-like inputs
/// (n = 509,640, t = 28 Å) this gives R ≈ 155 Å — the right order for the
/// real 28 nm-diameter virion.
pub fn capsid(name: impl Into<String>, n_atoms: usize, seed: u64) -> Molecule {
    capsid_with(name, n_atoms, seed, CapsidParams::default())
}

/// [`capsid`] with explicit parameters.
pub fn capsid_with(
    name: impl Into<String>,
    n_atoms: usize,
    seed: u64,
    params: CapsidParams,
) -> Molecule {
    assert!(n_atoms > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCAB51D);
    let mut mol = Molecule::with_capacity(name, n_atoms);

    // Solve for the mean radius with t = min(thickness, R/2) so that small
    // capsids stay hollow: in the thin-shell regime R = sqrt(n/(4πtρ));
    // when that would make the shell thicker than half the radius, switch
    // to t = R/2 and R = (n/(2πρ))^(1/3).
    let four_pi = 4.0 * std::f64::consts::PI;
    let r_thin = (n_atoms as f64 / (four_pi * params.thickness * params.density)).sqrt();
    let (r_mean, t) = if r_thin >= 2.0 * params.thickness {
        (r_thin, params.thickness)
    } else {
        let r = (n_atoms as f64 / (0.5 * four_pi * params.density)).cbrt();
        (r, r / 2.0)
    };

    // Golden-angle (Fibonacci) spiral gives a quasi-uniform point
    // distribution over the sphere; radial jitter fills the shell.
    let golden = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
    for i in 0..n_atoms {
        let frac = (i as f64 + 0.5) / n_atoms as f64;
        let z = 1.0 - 2.0 * frac;
        let rho = (1.0 - z * z).max(0.0).sqrt();
        let phi = golden * i as f64;
        let dir = Vec3::new(rho * phi.cos(), rho * phi.sin(), z);

        // Capsomer lumps: a few low-order angular harmonics modulate the
        // shell radius so the surface is bumpy like a real capsid.
        let bump = 1.0
            + params.lumpiness
                * ((7.0 * phi).cos() * (5.0 * z).sin() + (11.0 * phi).sin() * (3.0 * z).cos())
                * 0.5;

        // Uniform radial fill of the annulus plus small jitter to break
        // the spiral's regularity.
        let u: f64 = rng.gen_range(0.0..1.0);
        let r3 = {
            // Uniform in shell volume: r = ((r_out^3 - r_in^3) u + r_in^3)^(1/3)
            let r_in = (r_mean - t / 2.0).max(0.0);
            let r_out = r_mean + t / 2.0;
            ((r_out.powi(3) - r_in.powi(3)) * u + r_in.powi(3)).cbrt()
        };
        let jitter = Vec3::new(
            random_normal(&mut rng),
            random_normal(&mut rng),
            random_normal(&mut rng),
        ) * 0.6;
        let pos = dir * (r3 * bump) + jitter;

        let el = sample_heavy_element(rng.gen_range(0.0..1.0));
        let q = random_normal(&mut rng) * el.typical_charge_scale();
        mol.push(Atom::of_element(el, pos, q));
    }

    mol.neutralize_to(0.0);
    mol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_deterministic() {
        let a = capsid("c", 5000, 1);
        assert_eq!(a.len(), 5000);
        let b = capsid("c", 5000, 1);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn shell_is_hollow() {
        let m = capsid("c", 20_000, 2);
        let c = m.centroid();
        let radii: Vec<f64> = m.positions.iter().map(|p| p.dist(c)).collect();
        let min_r = radii.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_r = radii.iter().cloned().fold(0.0f64, f64::max);
        // Hollow: inner radius is a large fraction of outer radius.
        assert!(min_r > 0.5 * max_r, "not hollow: min {min_r} max {max_r}");
    }

    #[test]
    fn radius_scales_with_sqrt_of_atoms() {
        // Sizes chosen inside the thin-shell regime (R >= 2*thickness),
        // where the R ~ sqrt(n) law holds.
        let small = capsid("s", 100_000, 3);
        let big = capsid("b", 400_000, 3);
        let r = |m: &Molecule| {
            let c = m.centroid();
            m.positions.iter().map(|p| p.dist(c)).sum::<f64>() / m.len() as f64
        };
        let ratio = r(&big) / r(&small);
        assert!((ratio - 2.0).abs() < 0.3, "shell radius ratio {ratio}, expected ~2");
    }

    #[test]
    fn neutral_and_valid() {
        let m = capsid("c", 3_000, 4);
        assert!(m.net_charge().abs() < 1e-9);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn cmv_scale_radius_is_physical() {
        // Don't generate all 509k atoms in a unit test; just check the
        // radius formula at CMV scale.
        let n = 509_640f64;
        let p = CapsidParams::default();
        let r = (n / (4.0 * std::f64::consts::PI * p.thickness * p.density)).sqrt();
        assert!(r > 100.0 && r < 250.0, "CMV-like radius {r} Å");
    }
}
