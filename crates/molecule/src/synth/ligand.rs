//! Drug-sized small-molecule generator for the docking example.
//!
//! The paper's introduction motivates the whole computation with
//! ligand–receptor polarization energy in drug design; the docking example
//! needs a "drug molecule such as a ligand" — a few dozen atoms.

use super::{random_normal, random_unit, RejectionGrid};
use crate::atom::Atom;
use crate::elements::{sample_heavy_element, Element};
use crate::molecule::Molecule;
use polaroct_geom::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a compact branched small molecule with `n_atoms` atoms
/// (typical drugs: 20–70 heavy atoms). Deterministic in `(n_atoms, seed)`.
pub fn ligand(name: impl Into<String>, n_atoms: usize, seed: u64) -> Molecule {
    assert!(n_atoms > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11AA77);
    let mut mol = Molecule::with_capacity(name, n_atoms);
    let mut grid = RejectionGrid::new(1.6);

    // Grow a branched tree: each new atom bonds (1.5 Å) to a random
    // existing atom, rejecting placements that clash.
    let first = Atom::of_element(Element::C, Vec3::ZERO, 0.0);
    mol.push(first);
    grid.insert(first.pos);

    while mol.len() < n_atoms {
        let parent = mol.positions[rng.gen_range(0..mol.len())];
        let mut placed = false;
        for _ in 0..16 {
            let pos = parent + random_unit(&mut rng) * 1.5;
            if !grid.has_neighbor_within(pos, 1.2) {
                let el = sample_heavy_element(rng.gen_range(0.0..1.0));
                let q = random_normal(&mut rng) * el.typical_charge_scale();
                mol.push(Atom::of_element(el, pos, q));
                grid.insert(pos);
                placed = true;
                break;
            }
        }
        if !placed {
            // Crowded parent: accept a slightly longer bond to guarantee
            // termination.
            let pos = parent + random_unit(&mut rng) * 2.2;
            let el = sample_heavy_element(rng.gen_range(0.0..1.0));
            let q = random_normal(&mut rng) * el.typical_charge_scale();
            mol.push(Atom::of_element(el, pos, q));
            grid.insert(pos);
        }
    }

    mol.neutralize_to(0.0);
    mol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_count() {
        for n in [1, 5, 30, 64] {
            assert_eq!(ligand("l", n, 3).len(), n);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(ligand("a", 40, 9).positions, ligand("b", 40, 9).positions);
    }

    #[test]
    fn is_connected_scale() {
        // All atoms within a small ball (bond-tree of <=2.2 Å edges).
        let m = ligand("l", 50, 5);
        let c = m.centroid();
        for &p in &m.positions {
            assert!(p.dist(c) < 50.0 * 2.2);
        }
    }

    #[test]
    fn neutral() {
        assert!(ligand("l", 33, 8).net_charge().abs() < 1e-9);
    }
}
