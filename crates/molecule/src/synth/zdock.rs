//! ZDock-Benchmark-like protein suite.
//!
//! The paper tests on the bound proteins of the ZDock Benchmark Suite 2.0:
//! 84 complexes, protein sizes "from around 400 to 16,000" atoms (§V). We
//! mirror that with 84 deterministic synthetic proteins whose sizes span
//! 400–16,301 log-uniformly. Two paper-called-out sizes are pinned exactly:
//! 2,260 (Gromacs's best speedup) and 16,301 (the largest molecule, where
//! OCT_MPI hits ~11x over Amber on 12 cores). Sizes straddling 12k and 13k
//! are also pinned so the Tinker/GBr⁶ out-of-memory thresholds (§V.D) fall
//! inside the suite.

use super::protein::protein;
use crate::molecule::Molecule;

/// Number of proteins in the suite (84 complexes in ZDock 2.0).
pub const ZDOCK_SUITE_LEN: usize = 84;

/// One suite entry: a name, its atom count, and the generator seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZdockEntry {
    pub name: String,
    pub n_atoms: usize,
    pub seed: u64,
}

impl ZdockEntry {
    /// Generate the molecule for this entry.
    pub fn build(&self) -> Molecule {
        protein(self.name.clone(), self.n_atoms, self.seed)
    }
}

/// The 84 suite sizes, ascending. Log-uniform from 400 to 16,301 with the
/// paper's landmark sizes substituted at their rank positions.
pub fn zdock_sizes() -> Vec<usize> {
    let lo = 400f64;
    let hi = 16_301f64;
    let n = ZDOCK_SUITE_LEN;
    let mut sizes: Vec<usize> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            (lo * (hi / lo).powf(t)).round() as usize
        })
        .collect();
    // Pin landmark sizes at the nearest rank (keeps the list sorted).
    for &landmark in &[2_260usize, 11_800, 12_700, 13_600, 16_301] {
        let idx = sizes
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s.abs_diff(landmark))
            .map(|(i, _)| i)
            .unwrap();
        sizes[idx] = landmark;
    }
    sizes.sort_unstable();
    sizes
}

/// The full suite: entries `Z01..Z84`, ascending size, deterministic seeds.
pub fn zdock_suite() -> Vec<ZdockEntry> {
    zdock_sizes()
        .into_iter()
        .enumerate()
        .map(|(i, n_atoms)| ZdockEntry {
            name: format!("Z{:02}", i + 1),
            n_atoms,
            // Seed derives from rank, not size, so pinning sizes doesn't
            // correlate structures.
            seed: 0x5D0C_C000 + i as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_84_entries() {
        assert_eq!(zdock_suite().len(), ZDOCK_SUITE_LEN);
        assert_eq!(zdock_sizes().len(), ZDOCK_SUITE_LEN);
    }

    #[test]
    fn sizes_span_the_paper_range_sorted() {
        let s = zdock_sizes();
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "sizes sorted");
        assert_eq!(*s.first().unwrap(), 400);
        assert_eq!(*s.last().unwrap(), 16_301);
    }

    #[test]
    fn landmark_sizes_present() {
        let s = zdock_sizes();
        for lm in [2_260usize, 11_800, 12_700, 13_600, 16_301] {
            assert!(s.contains(&lm), "missing landmark {lm}");
        }
    }

    #[test]
    fn entries_build_molecules_of_declared_size() {
        let suite = zdock_suite();
        let e = &suite[0];
        let m = e.build();
        assert_eq!(m.len(), e.n_atoms);
        assert_eq!(m.name, e.name);
    }

    #[test]
    fn deterministic_suite() {
        let a = zdock_suite();
        let b = zdock_suite();
        assert_eq!(a, b);
        // Rebuilding an entry twice gives the same structure.
        let m1 = a[10].build();
        let m2 = b[10].build();
        assert_eq!(m1.positions, m2.positions);
    }

    #[test]
    fn names_are_rank_ordered() {
        let suite = zdock_suite();
        assert_eq!(suite[0].name, "Z01");
        assert_eq!(suite[83].name, "Z84");
    }
}
