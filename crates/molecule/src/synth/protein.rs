//! Globular synthetic protein generator.
//!
//! Models a protein as a compact random-coil chain of residues, each
//! residue contributing ~8 heavy atoms (protein average). The chain is a
//! biased self-avoiding random walk: Cα–Cα steps of 3.8 Å with a pull
//! toward the centroid once the walk strays outside the target globule
//! radius, giving protein-like packing density (~0.06 heavy atoms/Å³) and
//! the roughly spherical shape the surface-based r⁶ Born approximation
//! assumes (Grycuk 2003, cited by the paper, reports r⁶ is most accurate
//! for spherical solutes).

use super::{random_normal, random_unit, RejectionGrid, HEAVY_ATOM_DENSITY};
use crate::atom::Atom;
use crate::elements::{sample_heavy_element, Element};
use crate::molecule::Molecule;
use polaroct_geom::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Tunables for [`protein`]. The defaults match average protein geometry.
#[derive(Clone, Copy, Debug)]
pub struct ProteinParams {
    /// Cα–Cα virtual bond length (Å).
    pub ca_step: f64,
    /// Heavy atoms per residue.
    pub atoms_per_residue: usize,
    /// Minimum heavy-atom separation enforced during generation (Å).
    pub min_separation: f64,
    /// Target interior density (heavy atoms / Å³).
    pub density: f64,
}

impl Default for ProteinParams {
    fn default() -> Self {
        ProteinParams {
            ca_step: 3.8,
            atoms_per_residue: 8,
            min_separation: 2.4,
            density: HEAVY_ATOM_DENSITY,
        }
    }
}

/// Generate a globular protein with exactly `n_atoms` heavy atoms.
///
/// Deterministic in `(n_atoms, seed)`. Partial charges are sampled per
/// element and then uniformly shifted so the molecule is neutral, like a
/// typical protonated-then-neutralized force-field assignment.
pub fn protein(name: impl Into<String>, n_atoms: usize, seed: u64) -> Molecule {
    protein_with(name, n_atoms, seed, ProteinParams::default())
}

/// [`protein`] with explicit parameters.
pub fn protein_with(
    name: impl Into<String>,
    n_atoms: usize,
    seed: u64,
    params: ProteinParams,
) -> Molecule {
    assert!(n_atoms > 0, "protein needs at least one atom");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut mol = Molecule::with_capacity(name, n_atoms);

    // Globule radius from target density.
    let target_r = (3.0 * n_atoms as f64 / (4.0 * std::f64::consts::PI * params.density)).cbrt();

    let mut grid = RejectionGrid::new(params.min_separation.max(1.0));
    let mut ca = Vec3::ZERO;
    let mut dir = random_unit(&mut rng);

    while mol.len() < n_atoms {
        // --- advance the backbone ---
        // Persistence: perturb the previous direction.
        let mut d = (dir + random_unit(&mut rng) * 0.9).normalized();
        // Pull back toward the center once outside the globule.
        let r = ca.norm();
        if r > 0.85 * target_r {
            let inward = -ca / r;
            let w = ((r / target_r) - 0.85).min(1.0) * 3.0;
            d = (d + inward * w).normalized();
        }
        // Self-avoidance: try a few directions before giving up (real
        // chains do clash slightly; accepting occasionally is fine).
        for _ in 0..8 {
            let cand = ca + d * params.ca_step;
            if !grid.has_neighbor_within(cand, params.min_separation) {
                break;
            }
            d = random_unit(&mut rng);
        }
        dir = d;
        ca += d * params.ca_step;

        // --- place this residue's heavy atoms around the Cα ---
        let burst = params.atoms_per_residue.min(n_atoms - mol.len());
        for k in 0..burst {
            let pos = if k == 0 {
                ca // the Cα itself
            } else {
                // Side-chain/backbone atoms: 1.5 Å bond steps branching out.
                let mut p = ca;
                let links = 1 + (k / 3);
                for _ in 0..links {
                    p += random_unit(&mut rng) * 1.5;
                }
                p
            };
            let el = if k == 0 { Element::C } else { sample_heavy_element(rng.gen_range(0.0..1.0)) };
            let q = random_normal(&mut rng) * el.typical_charge_scale();
            mol.push(Atom::of_element(el, pos, q));
            grid.insert(pos);
        }
    }

    mol.neutralize_to(0.0);
    debug_assert_eq!(mol.len(), n_atoms);
    mol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_atom_count() {
        for n in [1, 7, 8, 9, 100, 403] {
            assert_eq!(protein("p", n, 1).len(), n);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = protein("a", 500, 42);
        let b = protein("b", 500, 42);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.charges, b.charges);
        let c = protein("c", 500, 43);
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn is_neutral() {
        let m = protein("p", 1000, 7);
        assert!(m.net_charge().abs() < 1e-9);
    }

    #[test]
    fn is_globular_density_in_protein_range() {
        let n = 4000;
        let m = protein("p", n, 11);
        // Radius of gyration of a globule of radius R is R*sqrt(3/5);
        // check the implied density is within 3x of the target (the walk
        // is stochastic, we only need the right ballpark for benchmarks).
        let c = m.centroid();
        let rg2: f64 =
            m.positions.iter().map(|p| p.dist2(c)).sum::<f64>() / n as f64;
        let r_eff = (rg2 * 5.0 / 3.0).sqrt();
        let vol = 4.0 / 3.0 * std::f64::consts::PI * r_eff.powi(3);
        let density = n as f64 / vol;
        assert!(
            density > HEAVY_ATOM_DENSITY / 3.0 && density < HEAVY_ATOM_DENSITY * 3.0,
            "density {density} vs target {HEAVY_ATOM_DENSITY}"
        );
    }

    #[test]
    fn charges_are_bounded() {
        let m = protein("p", 2000, 3);
        for &q in &m.charges {
            assert!(q.abs() < 4.0, "unphysical charge {q}");
        }
    }

    #[test]
    fn atoms_not_excessively_clustered() {
        // Mean nearest-neighbor distance should be around bond length
        // (1.2–3 Å), not collapsed to ~0.
        let m = protein("p", 600, 5);
        let mut sum = 0.0;
        for i in 0..m.len() {
            let mut best = f64::INFINITY;
            for j in 0..m.len() {
                if i != j {
                    best = best.min(m.positions[i].dist2(m.positions[j]));
                }
            }
            sum += best.sqrt();
        }
        let mean_nn = sum / m.len() as f64;
        assert!(mean_nn > 0.5 && mean_nn < 4.0, "mean NN dist {mean_nn}");
    }

    #[test]
    fn validates() {
        assert!(protein("p", 350, 9).validate().is_ok());
    }
}
