//! Deterministic synthetic molecule generators.
//!
//! These stand in for the paper's benchmark inputs (ZDock Suite 2.0, CMV,
//! BTV — see DESIGN.md §2). All generators are pure functions of their
//! seed: the same `(name, n_atoms, seed)` always yields the same molecule,
//! which is what makes the figure harnesses reproducible.

mod capsid;
mod ligand;
mod protein;
mod zdock;

pub use capsid::{capsid, CapsidParams};
pub use ligand::ligand;
pub use protein::{protein, ProteinParams};
pub use zdock::{zdock_sizes, zdock_suite, ZdockEntry, ZDOCK_SUITE_LEN};

use polaroct_geom::Vec3;
use rand::Rng;

/// Protein interiors average ~1 heavy atom per 16 Å³.
pub(crate) const HEAVY_ATOM_DENSITY: f64 = 0.06;

/// Uniform random unit vector.
pub(crate) fn random_unit<R: Rng>(rng: &mut R) -> Vec3 {
    // Marsaglia (1972) rejection on the unit disk.
    loop {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        let s = a * a + b * b;
        if s < 1.0 && s > 0.0 {
            let t = 2.0 * (1.0 - s).sqrt();
            return Vec3::new(a * t, b * t, 1.0 - 2.0 * s);
        }
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn random_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// Spatial hash grid used for cheap self-avoidance during generation.
pub(crate) struct RejectionGrid {
    cell: f64,
    map: std::collections::HashMap<(i64, i64, i64), Vec<Vec3>>,
}

impl RejectionGrid {
    pub fn new(cell: f64) -> Self {
        RejectionGrid { cell, map: std::collections::HashMap::new() }
    }

    fn key(&self, p: Vec3) -> (i64, i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
            (p.z / self.cell).floor() as i64,
        )
    }

    /// True if some stored point is within `min_dist` of `p`.
    pub fn has_neighbor_within(&self, p: Vec3, min_dist: f64) -> bool {
        let (kx, ky, kz) = self.key(p);
        let d2 = min_dist * min_dist;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(v) = self.map.get(&(kx + dx, ky + dy, kz + dz)) {
                        if v.iter().any(|q| q.dist2(p) < d2) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    pub fn insert(&mut self, p: Vec3) {
        self.map.entry(self.key(p)).or_default().push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_unit_has_unit_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let v = random_unit(&mut rng);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_unit_is_roughly_isotropic() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut mean = Vec3::ZERO;
        let n = 20_000;
        for _ in 0..n {
            mean += random_unit(&mut rng);
        }
        mean = mean / n as f64;
        assert!(mean.norm() < 0.02, "directional bias: {mean:?}");
    }

    #[test]
    fn random_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = random_normal(&mut rng);
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rejection_grid_detects_neighbors_across_cells() {
        let mut g = RejectionGrid::new(2.0);
        g.insert(Vec3::new(1.9, 0.0, 0.0));
        // Query point in adjacent cell, within radius.
        assert!(g.has_neighbor_within(Vec3::new(2.1, 0.0, 0.0), 0.5));
        // Outside radius.
        assert!(!g.has_neighbor_within(Vec3::new(4.5, 0.0, 0.0), 0.5));
        // Empty region.
        assert!(!g.has_neighbor_within(Vec3::new(100.0, 0.0, 0.0), 5.0));
    }
}
