//! Minimal PDB reader (fixed-column `ATOM`/`HETATM` records).
//!
//! PDB files carry no charges or radii; the reader assigns Bondi radii
//! from the element (columns 77–78 when present, else inferred from the
//! atom name) and zero charges — callers supply charges via a force field
//! or [`crate::Molecule::charges`] directly. Good enough to pull real
//! structures into the examples; for charge+radius-complete input use PQR.

use super::IoError;
use crate::atom::Atom;
use crate::elements::Element;
use crate::molecule::Molecule;
use polaroct_geom::Vec3;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Parse a molecule from PDB text.
pub fn read<R: Read>(name: impl Into<String>, reader: R) -> Result<Molecule, IoError> {
    let mut mol = Molecule::with_capacity(name, 0);
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        if !(line.starts_with("ATOM") || line.starts_with("HETATM")) {
            continue;
        }
        if line.len() < 54 {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("ATOM record too short ({} cols)", line.len()),
            });
        }
        // Fixed columns (1-based in the spec): x 31–38, y 39–46, z 47–54,
        // atom name 13–16, element 77–78.
        let coord = |a: usize, b: usize, what: &str| -> Result<f64, IoError> {
            line[a..b].trim().parse::<f64>().map_err(|_| IoError::Parse {
                line: lineno,
                message: format!("bad {what}: {:?}", &line[a..b]),
            })
        };
        let x = coord(30, 38, "x")?;
        let y = coord(38, 46, "y")?;
        let z = coord(46, 54, "z")?;
        let element = if line.len() >= 78 && !line[76..78].trim().is_empty() {
            Element::from_symbol(line[76..78].trim())
        } else {
            Element::from_symbol(line[12..16].trim())
        };
        mol.push(Atom::of_element(element, Vec3::new(x, y, z), 0.0));
    }
    if mol.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(mol)
}

/// Read a PDB file (name = file stem).
pub fn read_file(path: impl AsRef<Path>) -> Result<Molecule, IoError> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("molecule").to_string();
    read(name, std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
HEADER    TEST
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
HETATM    3  O   HOH A   2       9.000   1.000   0.000  1.00  0.00           O
TER
END
";

    #[test]
    fn parses_fixed_columns() {
        let m = read("t", SAMPLE.as_bytes()).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.elements[0], Element::N);
        assert_eq!(m.elements[1], Element::C);
        assert!((m.positions[0].x - 11.104).abs() < 1e-9);
        assert!((m.positions[2].z - 0.0).abs() < 1e-9);
        // Radii from Bondi table, zero charges.
        assert_eq!(m.radii[1], Element::C.vdw_radius());
        assert!(m.charges.iter().all(|&q| q == 0.0));
    }

    #[test]
    fn element_falls_back_to_atom_name() {
        // No element columns (line exactly 54 chars of data).
        let text = "ATOM      1  CA  ALA A   1      11.639   6.071  -5.147\n";
        let m = read("t", text.as_bytes()).unwrap();
        assert_eq!(m.elements[0], Element::C);
    }

    #[test]
    fn short_record_errors_with_line() {
        let e = read("t", "ATOM 1 CA\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn garbage_coordinates_error() {
        let text = "ATOM      1  CA  ALA A   1      xx.xxx   6.071  -5.147\n";
        assert!(read("t", text.as_bytes()).is_err());
    }

    #[test]
    fn empty_pdb_is_error() {
        assert!(matches!(read("t", "HEADER x\nEND\n".as_bytes()), Err(IoError::Empty)));
    }
}
