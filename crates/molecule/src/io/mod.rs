//! Molecule file I/O.
//!
//! Two formats:
//!
//! * [`xyzrq`] — one atom per line: `x y z radius charge [element]`. The
//!   native interchange format of this workspace (simple, lossless for the
//!   fields the algorithms use).
//! * [`pqr`] — the APBS/AMBER PQR flavor of PDB `ATOM` records (position +
//!   charge + radius), enough to load real protein inputs prepared with
//!   pdb2pqr.
//! * [`pdb`] — plain PDB coordinates (Bondi radii from elements, zero
//!   charges — supply charges separately).

pub mod pdb;
pub mod pqr;
pub mod xyzrq;

use std::fmt;

/// Errors from the molecule readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record; carries the 1-based line number and a message.
    Parse { line: usize, message: String },
    /// The file contained no atoms.
    Empty,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Empty => write!(f, "no atoms found"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn parse_f64(tok: &str, line: usize, what: &str) -> Result<f64, IoError> {
    // Rust's f64 parser accepts "NaN"/"inf"/"infinity"; a single such
    // value would silently poison every downstream reduction, so the
    // readers treat non-finite fields as parse errors.
    let v = tok.parse::<f64>().map_err(|_| IoError::Parse {
        line,
        message: format!("bad {what}: {tok:?}"),
    })?;
    if !v.is_finite() {
        return Err(IoError::Parse {
            line,
            message: format!("non-finite {what}: {tok:?}"),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Parse { line: 3, message: "bad x".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad x");
        assert_eq!(IoError::Empty.to_string(), "no atoms found");
    }

    #[test]
    fn io_error_wraps_source() {
        use std::error::Error;
        let e = IoError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("I/O error"));
    }

    #[test]
    fn parse_f64_reports_line() {
        let e = parse_f64("zzz", 7, "charge").unwrap_err();
        match e {
            IoError::Parse { line, message } => {
                assert_eq!(line, 7);
                assert!(message.contains("charge"));
            }
            _ => panic!("wrong variant"),
        }
        assert_eq!(parse_f64("1.5", 1, "x").unwrap(), 1.5);
    }

    #[test]
    fn parse_f64_rejects_non_finite() {
        for tok in ["NaN", "nan", "inf", "-inf", "infinity", "1e999"] {
            let e = parse_f64(tok, 11, "charge").unwrap_err();
            match e {
                IoError::Parse { line, message } => {
                    assert_eq!(line, 11, "{tok}");
                    assert!(message.contains("charge"), "{message}");
                }
                _ => panic!("wrong variant for {tok}"),
            }
        }
    }
}
