//! `xyzrq` — whitespace-separated `x y z radius charge [element]` records.
//!
//! Lines starting with `#` and blank lines are skipped. The element column
//! is optional (defaults to [`Element::Other`]).

use super::{parse_f64, IoError};
use crate::atom::Atom;
use crate::elements::Element;
use crate::molecule::Molecule;
use polaroct_geom::Vec3;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse a molecule from an `xyzrq` reader.
pub fn read<R: Read>(name: impl Into<String>, reader: R) -> Result<Molecule, IoError> {
    let mut mol = Molecule::with_capacity(name, 0);
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if toks.len() < 5 {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("expected at least 5 fields, got {}", toks.len()),
            });
        }
        let x = parse_f64(toks[0], lineno, "x")?;
        let y = parse_f64(toks[1], lineno, "y")?;
        let z = parse_f64(toks[2], lineno, "z")?;
        let radius = parse_f64(toks[3], lineno, "radius")?;
        let charge = parse_f64(toks[4], lineno, "charge")?;
        if radius <= 0.0 {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("non-positive radius {radius}"),
            });
        }
        let element = toks.get(5).map(|s| Element::from_symbol(s)).unwrap_or(Element::Other);
        mol.push(Atom { pos: Vec3::new(x, y, z), radius, charge, element });
    }
    if mol.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(mol)
}

/// Read a molecule from a file path (name = file stem).
pub fn read_file(path: impl AsRef<Path>) -> Result<Molecule, IoError> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("molecule").to_string();
    let f = std::fs::File::open(path)?;
    read(name, f)
}

/// Write a molecule in `xyzrq` format.
pub fn write<W: Write>(mol: &Molecule, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# polaroct xyzrq: x y z radius charge element ({} atoms)", mol.len())?;
    for a in mol.atoms() {
        writeln!(
            w,
            "{:.6} {:.6} {:.6} {:.4} {:.6} {}",
            a.pos.x,
            a.pos.y,
            a.pos.z,
            a.radius,
            a.charge,
            a.element.symbol()
        )?;
    }
    Ok(())
}

/// Write a molecule to a file path.
pub fn write_file(mol: &Molecule, path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write(mol, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_atoms() {
        let mol = crate::synth::ligand("lig", 25, 4);
        let mut buf = Vec::new();
        write(&mol, &mut buf).unwrap();
        let back = read("lig", buf.as_slice()).unwrap();
        assert_eq!(back.len(), mol.len());
        for i in 0..mol.len() {
            assert!((back.positions[i] - mol.positions[i]).norm() < 1e-5);
            assert!((back.charges[i] - mol.charges[i]).abs() < 1e-5);
            assert_eq!(back.elements[i], mol.elements[i]);
        }
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1 2 3 1.5 0.1 C\n  \n# tail\n4 5 6 1.2 -0.1 O\n";
        let m = read("t", text.as_bytes()).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.elements[1], Element::O);
    }

    #[test]
    fn element_column_optional() {
        let m = read("t", "0 0 0 1.0 0.0\n".as_bytes()).unwrap();
        assert_eq!(m.elements[0], Element::Other);
    }

    #[test]
    fn rejects_short_lines() {
        let e = read("t", "1 2 3 4\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_numbers_with_line_number() {
        let e = read("t", "0 0 0 1 0.1 C\n1 2 x 1 0.1 C\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_non_finite_fields_with_line_number() {
        let e = read("t", "0 0 0 1 0.1 C\n1 2 NaN 1 0.1 C\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 2, .. }));
        let e = read("t", "0 0 0 1 inf\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_nonpositive_radius() {
        let e = read("t", "0 0 0 0.0 0.1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { .. }));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(read("t", "# nothing\n".as_bytes()), Err(IoError::Empty)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("polaroct_xyzrq_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.xyzrq");
        let mol = crate::synth::ligand("m", 10, 1);
        write_file(&mol, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.len(), 10);
        assert_eq!(back.name, "m");
        std::fs::remove_dir_all(&dir).ok();
    }
}
