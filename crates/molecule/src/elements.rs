//! Chemical elements occurring in proteins, with van der Waals radii.
//!
//! Radii are Bondi (1964) values in Ångström — the standard set used by GB
//! implementations for the intrinsic atomic radius `r_a` that also floors
//! the effective Born radius (`R_a = max(r_a, ...)` in Fig. 2 of the
//! paper).

/// Element kinds found in protein structures (plus a catch-all).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Element {
    H,
    C,
    N,
    O,
    S,
    P,
    /// Anything else (metals, halogens in ligands, ...).
    Other,
}

impl Element {
    /// All concrete variants, in atomic-number order.
    pub const ALL: [Element; 7] =
        [Element::H, Element::C, Element::N, Element::O, Element::S, Element::P, Element::Other];

    /// Bondi van der Waals radius in Å.
    pub fn vdw_radius(self) -> f64 {
        match self {
            Element::H => 1.20,
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
            Element::P => 1.80,
            Element::Other => 1.70,
        }
    }

    /// Atomic mass in Dalton (for completeness / future MD use).
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
            Element::P => 30.974,
            Element::Other => 12.011,
        }
    }

    /// One-letter symbol used by the writers in [`crate::io`].
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
            Element::P => "P",
            Element::Other => "X",
        }
    }

    /// Parse an element symbol (case-insensitive, first alphabetic token of
    /// a PDB/PQR atom name). Unknown symbols map to [`Element::Other`].
    pub fn from_symbol(s: &str) -> Element {
        let t = s.trim();
        // PDB atom names like "1HB2" prefix digits; strip them.
        let first = t.chars().find(|c| c.is_ascii_alphabetic());
        match first.map(|c| c.to_ascii_uppercase()) {
            Some('H') => Element::H,
            Some('C') => Element::C,
            Some('N') => Element::N,
            Some('O') => Element::O,
            Some('S') => Element::S,
            Some('P') => Element::P,
            _ => Element::Other,
        }
    }

    /// Representative partial-charge scale for the element in a protein
    /// force field (magnitude only; sign and spread are sampled by the
    /// generators). Values are typical AMBER ff99 magnitudes.
    pub fn typical_charge_scale(self) -> f64 {
        match self {
            Element::H => 0.15,
            Element::C => 0.20,
            Element::N => 0.45,
            Element::O => 0.55,
            Element::S => 0.25,
            Element::P => 0.80,
            Element::Other => 0.20,
        }
    }
}

/// Heavy-atom composition of an average protein (fractions sum to 1).
/// Source: average elemental composition of globular proteins
/// (~C:0.52 N:0.14 O:0.23 S:0.01 weighted to heavy atoms).
pub const PROTEIN_HEAVY_COMPOSITION: [(Element, f64); 4] = [
    (Element::C, 0.62),
    (Element::N, 0.16),
    (Element::O, 0.21),
    (Element::S, 0.01),
];

/// Pick a heavy element from the protein composition given a uniform
/// sample `u` in [0,1).
pub fn sample_heavy_element(u: f64) -> Element {
    let mut acc = 0.0;
    for &(el, frac) in &PROTEIN_HEAVY_COMPOSITION {
        acc += frac;
        if u < acc {
            return el;
        }
    }
    Element::C
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii_are_physical() {
        for el in Element::ALL {
            let r = el.vdw_radius();
            assert!((1.0..2.2).contains(&r), "{el:?} radius {r}");
        }
    }

    #[test]
    fn hydrogen_is_smallest() {
        for el in Element::ALL {
            if el != Element::H {
                assert!(el.vdw_radius() > Element::H.vdw_radius());
            }
        }
    }

    #[test]
    fn symbol_roundtrip() {
        for el in [Element::H, Element::C, Element::N, Element::O, Element::S, Element::P] {
            assert_eq!(Element::from_symbol(el.symbol()), el);
        }
    }

    #[test]
    fn from_symbol_handles_pdb_names() {
        assert_eq!(Element::from_symbol("1HB2"), Element::H);
        assert_eq!(Element::from_symbol(" CA "), Element::C);
        assert_eq!(Element::from_symbol("OXT"), Element::O);
        assert_eq!(Element::from_symbol("ZN"), Element::Other);
        assert_eq!(Element::from_symbol(""), Element::Other);
    }

    #[test]
    fn composition_sums_to_one() {
        let s: f64 = PROTEIN_HEAVY_COMPOSITION.iter().map(|&(_, f)| f).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_heavy_element_covers_all_bins() {
        assert_eq!(sample_heavy_element(0.0), Element::C);
        assert_eq!(sample_heavy_element(0.63), Element::N);
        assert_eq!(sample_heavy_element(0.80), Element::O);
        assert_eq!(sample_heavy_element(0.995), Element::S);
        assert_eq!(sample_heavy_element(0.9999999), Element::S);
    }

    #[test]
    fn masses_are_positive_and_ordered() {
        assert!(Element::H.mass() < Element::C.mass());
        assert!(Element::C.mass() < Element::S.mass());
    }
}
