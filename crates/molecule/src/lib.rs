//! # polaroct-molecule
//!
//! Molecule representation and input generation for `polaroct`.
//!
//! The energy algorithms only consume four per-atom quantities — position,
//! van der Waals radius, partial charge, and (after the Born phase) the
//! effective Born radius — so [`Molecule`] stores exactly those in
//! structure-of-arrays layout for cache-friendly sweeps.
//!
//! ## Synthetic benchmark inputs
//!
//! The paper evaluates on the ZDock Benchmark Suite 2.0 (84 bound
//! complexes, 400–16,301 atoms per protein), the Cucumber Mosaic Virus
//! shell (509,640 atoms) and the Blue Tongue Virus (6M atoms). Those PDB
//! inputs are not redistributable here, so [`synth`] provides deterministic
//! generators with matching size/shape statistics:
//!
//! * [`synth::protein`] — globular random-coil proteins with protein-like
//!   packing density and element composition,
//! * [`synth::capsid`] — hollow icosahedral virus shells,
//! * [`synth::zdock_suite`] — an 84-entry suite mirroring the ZDock size
//!   distribution,
//! * [`synth::ligand`] — drug-sized small molecules for the docking
//!   example.
//!
//! See DESIGN.md §2 for the substitution rationale.
//!
//! ## File I/O
//!
//! [`io`] reads and writes the simple `xyzr`/`xyzrq` formats and a useful
//! subset of PQR, so real molecules can be dropped in when available.

#![forbid(unsafe_code)]

pub mod atom;
pub mod elements;
pub mod io;
pub mod molecule;
pub mod synth;

pub use atom::Atom;
pub use elements::Element;
pub use molecule::Molecule;
