//! Structure-of-arrays molecule.

use crate::atom::Atom;
use crate::elements::Element;
use polaroct_geom::{Aabb, Transform, Vec3};

/// A molecule in SoA layout: `positions[i]`, `radii[i]`, `charges[i]`,
/// `elements[i]` describe atom `i`.
///
/// The SoA layout is deliberate (see the Rust Performance Book guidance on
/// data layout): the Born-radius and E_pol kernels stream through positions
/// and charges of whole octree leaves, and keeping them in dense parallel
/// arrays lets LLVM vectorize the inner loops and keeps the working set per
/// leaf to a few cache lines.
#[derive(Clone, Debug, Default)]
pub struct Molecule {
    pub positions: Vec<Vec3>,
    pub radii: Vec<f64>,
    pub charges: Vec<f64>,
    pub elements: Vec<Element>,
    /// Human-readable identifier ("Z17", "CMV-shell", a file stem, ...).
    pub name: String,
}

impl Molecule {
    /// Empty molecule with capacity for `n` atoms.
    pub fn with_capacity(name: impl Into<String>, n: usize) -> Self {
        Molecule {
            positions: Vec::with_capacity(n),
            radii: Vec::with_capacity(n),
            charges: Vec::with_capacity(n),
            elements: Vec::with_capacity(n),
            name: name.into(),
        }
    }

    /// Build from an atom iterator.
    pub fn from_atoms(name: impl Into<String>, atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut m = Molecule::with_capacity(name, 0);
        for a in atoms {
            m.push(a);
        }
        m
    }

    /// Append one atom.
    pub fn push(&mut self, a: Atom) {
        self.positions.push(a.pos);
        self.radii.push(a.radius);
        self.charges.push(a.charge);
        self.elements.push(a.element);
    }

    /// Number of atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// AoS view of atom `i`.
    pub fn atom(&self, i: usize) -> Atom {
        Atom {
            pos: self.positions[i],
            radius: self.radii[i],
            charge: self.charges[i],
            element: self.elements[i],
        }
    }

    /// Iterate AoS views (test/IO convenience; not for hot loops).
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        (0..self.len()).map(move |i| self.atom(i))
    }

    /// Sum of partial charges.
    pub fn net_charge(&self) -> f64 {
        self.charges.iter().sum()
    }

    /// Shift every charge uniformly so the net charge becomes `target`.
    pub fn neutralize_to(&mut self, target: f64) {
        if self.is_empty() {
            return;
        }
        let shift = (target - self.net_charge()) / self.len() as f64;
        for q in &mut self.charges {
            *q += shift;
        }
    }

    /// Bounding box of atom centers.
    pub fn bbox(&self) -> Aabb {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// Bounding box of van der Waals spheres (centers padded by radii).
    pub fn bbox_with_radii(&self) -> Aabb {
        let mut b = Aabb::EMPTY;
        for (p, r) in self.positions.iter().zip(&self.radii) {
            b.grow(*p + Vec3::splat(*r));
            b.grow(*p - Vec3::splat(*r));
        }
        b
    }

    /// Geometric center of atom positions.
    pub fn centroid(&self) -> Vec3 {
        if self.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for &p in &self.positions {
            c += p;
        }
        c / self.len() as f64
    }

    /// Apply a rigid transform in place (positions rotate+translate; radii
    /// and charges are invariant).
    pub fn transform(&mut self, t: &Transform) {
        for p in &mut self.positions {
            *p = t.apply_point(*p);
        }
    }

    /// A transformed copy.
    pub fn transformed(&self, t: &Transform) -> Molecule {
        let mut m = self.clone();
        m.transform(t);
        m
    }

    /// Concatenate another molecule's atoms (e.g. receptor + ligand
    /// complex).
    pub fn extend_from(&mut self, o: &Molecule) {
        self.positions.extend_from_slice(&o.positions);
        self.radii.extend_from_slice(&o.radii);
        self.charges.extend_from_slice(&o.charges);
        self.elements.extend_from_slice(&o.elements);
    }

    /// Heap bytes used by the SoA arrays — the unit of the paper's
    /// data-replication memory accounting (§V.B).
    pub fn memory_bytes(&self) -> usize {
        self.positions.len() * std::mem::size_of::<Vec3>()
            + self.radii.len() * 8
            + self.charges.len() * 8
            + self.elements.len()
    }

    /// Basic sanity checks: finite positions, positive radii. Returns the
    /// index of the first offending atom.
    pub fn validate(&self) -> Result<(), usize> {
        for i in 0..self.len() {
            if !self.positions[i].is_finite()
                || !self.radii[i].is_finite()
                || self.radii[i] <= 0.0
                || !self.charges[i].is_finite()
            {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Molecule {
        Molecule::from_atoms(
            "m",
            [
                Atom::of_element(Element::C, Vec3::ZERO, 0.5),
                Atom::of_element(Element::O, Vec3::new(2.0, 0.0, 0.0), -0.5),
                Atom::of_element(Element::N, Vec3::new(0.0, 2.0, 0.0), 0.3),
            ],
        )
    }

    #[test]
    fn push_and_len() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.atom(1).element, Element::O);
    }

    #[test]
    fn net_charge_and_neutralize() {
        let mut m = sample();
        assert!((m.net_charge() - 0.3).abs() < 1e-12);
        m.neutralize_to(0.0);
        assert!(m.net_charge().abs() < 1e-12);
        // Relative charge differences are preserved.
        assert!((m.charges[0] - m.charges[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_covers_all_positions() {
        let m = sample();
        let b = m.bbox();
        for &p in &m.positions {
            assert!(b.contains(p));
        }
        assert_eq!(b.max, Vec3::new(2.0, 2.0, 0.0));
    }

    #[test]
    fn bbox_with_radii_is_padded() {
        let m = sample();
        let inner = m.bbox();
        let outer = m.bbox_with_radii();
        assert!(outer.min.x < inner.min.x);
        assert!(outer.max.x > inner.max.x);
    }

    #[test]
    fn centroid_is_mean() {
        let m = sample();
        let c = m.centroid();
        assert!((c - Vec3::new(2.0 / 3.0, 2.0 / 3.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn transform_moves_positions_only() {
        let mut m = sample();
        let q0 = m.charges.clone();
        m.transform(&Transform::translation(Vec3::new(10.0, 0.0, 0.0)));
        assert_eq!(m.positions[0], Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(m.charges, q0);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut m = sample();
        let o = sample();
        m.extend_from(&o);
        assert_eq!(m.len(), 6);
        assert_eq!(m.atom(3).pos, Vec3::ZERO);
    }

    #[test]
    fn validate_catches_bad_atoms() {
        let mut m = sample();
        assert!(m.validate().is_ok());
        m.radii[1] = -1.0;
        assert_eq!(m.validate(), Err(1));
        m.radii[1] = 1.5;
        m.positions[2] = Vec3::new(f64::NAN, 0.0, 0.0);
        assert_eq!(m.validate(), Err(2));
    }

    #[test]
    fn memory_bytes_scales_with_atoms() {
        let m = sample();
        // 3 atoms * (24 + 8 + 8 + 1) bytes
        assert_eq!(m.memory_bytes(), 3 * 41);
    }

    #[test]
    fn empty_molecule_edge_cases() {
        let mut m = Molecule::default();
        assert!(m.is_empty());
        assert_eq!(m.centroid(), Vec3::ZERO);
        m.neutralize_to(0.0); // must not panic / divide by zero
        assert!(m.bbox().is_empty());
    }
}
