//! A single atom record.

use crate::elements::Element;
use polaroct_geom::Vec3;

/// One atom: position (Å), intrinsic (van der Waals) radius (Å), partial
/// charge (elementary charges, e) and element kind.
///
/// This is the AoS view used at construction/IO boundaries; the algorithms
/// work on the SoA [`crate::Molecule`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    pub pos: Vec3,
    pub radius: f64,
    pub charge: f64,
    pub element: Element,
}

impl Atom {
    /// Atom of `element` at `pos` with the element's Bondi radius.
    pub fn of_element(element: Element, pos: Vec3, charge: f64) -> Self {
        Atom { pos, radius: element.vdw_radius(), charge, element }
    }

    /// Squared center distance to another atom.
    #[inline]
    pub fn dist2(&self, o: &Atom) -> f64 {
        self.pos.dist2(o.pos)
    }

    /// Do the van der Waals spheres of two atoms overlap?
    #[inline]
    pub fn overlaps(&self, o: &Atom) -> bool {
        let r = self.radius + o.radius;
        self.dist2(o) < r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_element_uses_bondi_radius() {
        let a = Atom::of_element(Element::C, Vec3::ZERO, -0.1);
        assert_eq!(a.radius, 1.70);
        assert_eq!(a.charge, -0.1);
    }

    #[test]
    fn overlap_detection() {
        let a = Atom::of_element(Element::C, Vec3::ZERO, 0.0);
        let near = Atom::of_element(Element::C, Vec3::new(3.0, 0.0, 0.0), 0.0);
        let far = Atom::of_element(Element::C, Vec3::new(3.5, 0.0, 0.0), 0.0);
        assert!(a.overlaps(&near)); // 3.0 < 3.4
        assert!(!a.overlaps(&far)); // 3.5 > 3.4
    }

    #[test]
    fn dist2_matches_vec3() {
        let a = Atom::of_element(Element::N, Vec3::new(1.0, 2.0, 2.0), 0.0);
        let b = Atom::of_element(Element::O, Vec3::ZERO, 0.0);
        assert_eq!(a.dist2(&b), 9.0);
    }
}
