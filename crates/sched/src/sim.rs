//! Deterministic makespan simulator for randomized work stealing.
//!
//! Replays the Blumofe–Leiserson scheduler on `p` *virtual* workers over a
//! `cilk_for`-style index space with known per-task costs:
//!
//! * the whole index range starts in worker 0's deque,
//! * a worker pops from the **bottom** of its own deque, lazily splitting
//!   ranges bigger than the grain (keeping the upper half available to
//!   thieves),
//! * an idle worker picks a random victim and steals the **top** (oldest,
//!   largest) range, paying `steal_cost`,
//! * each range records when it became available, so a thief never
//!   executes work before the victim could have produced it.
//!
//! The outcome is the virtual completion time ("makespan"), which the
//! cluster simulator uses as the intra-node p-thread compute time. On real
//! 12-core hardware this is what the cilk++ runtime achieves up to
//! constants; the classic bound `T_p ≤ T_1/p + O(T_∞)` is asserted by the
//! property tests.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Simulator parameters.
#[derive(Clone, Copy, Debug)]
pub struct StealSimParams {
    /// Number of virtual workers (`p` threads inside one compute node).
    pub workers: usize,
    /// Virtual seconds per successful steal (deque CAS + cache misses on
    /// the stolen data; ~1 µs on the paper's Westmere nodes).
    pub steal_cost: f64,
    /// Per-task scheduling overhead (virtual seconds).
    pub task_overhead: f64,
    /// Splitting grain in tasks; 0 = auto (`max(1, n / (8 p))`, cilk's
    /// default policy shape).
    pub grain: usize,
    /// RNG seed for victim selection (determinism).
    pub seed: u64,
}

impl Default for StealSimParams {
    fn default() -> Self {
        StealSimParams {
            workers: 1,
            steal_cost: 1e-6,
            task_overhead: 2e-8,
            grain: 0,
            seed: 0x5EED,
        }
    }
}

/// Result of one simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimOutcome {
    /// Parallel completion time (virtual seconds).
    pub makespan: f64,
    /// Σ task costs (the serial work `T_1`, excluding overheads).
    pub total_work: f64,
    /// Successful steals.
    pub steals: usize,
    /// `total_work / (workers * makespan)` ∈ (0, 1].
    pub utilization: f64,
}

/// A range of tasks sitting in a deque, with the virtual time it became
/// stealable.
#[derive(Clone, Copy, Debug)]
struct RangeItem {
    lo: usize,
    hi: usize,
    available_at: f64,
}

/// The simulator (cheap to construct; [`StealSimulator::simulate`] is
/// reusable).
#[derive(Clone, Debug)]
pub struct StealSimulator {
    pub params: StealSimParams,
}

impl StealSimulator {
    pub fn new(params: StealSimParams) -> Self {
        // PANIC-OK: precondition assert — a zero-worker simulation is a caller bug.
        assert!(params.workers >= 1);
        StealSimulator { params }
    }

    /// Simulate executing tasks with the given `costs` (virtual seconds
    /// each) and return the outcome.
    pub fn simulate(&self, costs: &[f64]) -> SimOutcome {
        let p = self.params.workers;
        let n = costs.len();
        let total_work: f64 = costs.iter().sum();
        if n == 0 {
            return SimOutcome {
                makespan: 0.0,
                total_work: 0.0,
                steals: 0,
                utilization: 1.0,
            };
        }

        // Prefix sums for O(1) range-cost lookups.
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for &c in costs {
            // PANIC-OK: prefix starts with one element pushed above; last() is always Some.
            prefix.push(prefix.last().unwrap() + c);
        }
        let range_cost = |lo: usize, hi: usize| prefix[hi] - prefix[lo];

        let grain = if self.params.grain == 0 {
            (n / (8 * p)).max(1)
        } else {
            self.params.grain
        };

        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        // Deques: index 0 = top (steal end), back = bottom (owner end).
        let mut deques: Vec<Vec<RangeItem>> = vec![Vec::new(); p];
        deques[0].push(RangeItem {
            lo: 0,
            hi: n,
            available_at: 0.0,
        });
        let mut clocks = vec![0.0f64; p];
        let mut steals = 0usize;

        // Round-based simulation: repeatedly act on the worker with the
        // smallest clock that can make progress.
        loop {
            // Any work left anywhere?
            if deques.iter().all(|d| d.is_empty()) {
                break;
            }
            // Pick the active worker: smallest clock among those that
            // either own work or can steal (someone has work).
            let w = (0..p)
                .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]))
                // PANIC-OK: p >= 1 (asserted in new), so the minimum over 0..p exists.
                .unwrap();

            // Acquire work: own deque first, otherwise steal the top of a
            // random busy victim's deque. A thief *executes* what it stole
            // immediately, as a real work-stealing worker does — merely
            // re-enqueuing the stolen range would let it ping-pong between
            // idle workers indefinitely without ever running.
            let (item, acquired_at) = match deques[w].pop() {
                Some(item) => {
                    let t = clocks[w].max(item.available_at);
                    (item, t)
                }
                None => {
                    let busy: Vec<usize> = (0..p).filter(|&v| !deques[v].is_empty()).collect();
                    debug_assert!(!busy.is_empty());
                    let v = busy[rng.gen_range(0..busy.len())];
                    let item = deques[v].remove(0); // top of victim's deque
                    steals += 1;
                    let t = clocks[w].max(item.available_at) + self.params.steal_cost;
                    (item, t)
                }
            };
            // Lazy splitting, then execute the grain-sized front.
            let lo = item.lo;
            let mut hi = item.hi;
            let mut t = acquired_at;
            while hi - lo > grain {
                let mid = lo + (hi - lo) / 2;
                // The upper half becomes stealable "now".
                deques[w].insert(
                    0,
                    RangeItem {
                        lo: mid,
                        hi,
                        available_at: t,
                    },
                );
                hi = mid;
            }
            t += range_cost(lo, hi) + self.params.task_overhead * (hi - lo) as f64;
            clocks[w] = t;
        }

        let makespan = clocks.iter().cloned().fold(0.0f64, f64::max);
        SimOutcome {
            makespan,
            total_work,
            steals,
            utilization: if makespan > 0.0 {
                total_work / (p as f64 * makespan)
            } else {
                1.0
            },
        }
    }

    /// Convenience: simulated speedup of `p` workers over serial execution
    /// of the same costs.
    pub fn speedup(&self, costs: &[f64]) -> f64 {
        let serial: f64 = costs.iter().sum();
        let out = self.simulate(costs);
        if out.makespan > 0.0 {
            serial / out.makespan
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(p: usize) -> StealSimulator {
        StealSimulator::new(StealSimParams {
            workers: p,
            ..Default::default()
        })
    }

    fn uniform(n: usize, c: f64) -> Vec<f64> {
        vec![c; n]
    }

    #[test]
    fn single_worker_time_is_total_plus_overhead() {
        let costs = uniform(100, 0.01);
        let out = sim(1).simulate(&costs);
        let expected = 1.0 + 100.0 * StealSimParams::default().task_overhead;
        assert!((out.makespan - expected).abs() < 1e-9);
        assert_eq!(out.steals, 0);
    }

    #[test]
    fn makespan_lower_bounds() {
        let mut costs = uniform(200, 0.005);
        costs[7] = 0.5; // one heavy task
        for p in [2usize, 4, 8] {
            let out = sim(p).simulate(&costs);
            let total: f64 = costs.iter().sum();
            assert!(
                out.makespan >= total / p as f64 - 1e-12,
                "p={p}: below T1/p"
            );
            assert!(out.makespan >= 0.5 - 1e-12, "p={p}: below max task");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large virtual task sets are too slow under the interpreter")]
    fn blumofe_leiserson_upper_bound() {
        // T_p <= T_1/p + c * (T_inf + steals * steal_cost); for a flat
        // cilk_for, T_inf ~ grain_cost * log(n). Use a generous constant.
        let costs = uniform(4096, 0.001);
        for p in [2usize, 4, 12] {
            let out = sim(p).simulate(&costs);
            let t1: f64 = costs.iter().sum();
            let bound = t1 / p as f64 + 0.5 * t1; // very generous
            assert!(out.makespan <= bound, "p={p}: {} > {bound}", out.makespan);
            // And it should actually show speedup.
            assert!(out.makespan < t1 * 0.9, "p={p}: no speedup");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large virtual task sets are too slow under the interpreter")]
    fn speedup_is_monotone_ish_in_p() {
        let costs = uniform(8192, 0.0005);
        let s2 = sim(2).speedup(&costs);
        let s8 = sim(8).speedup(&costs);
        assert!(s2 > 1.5, "2 workers give {s2}");
        assert!(s8 > s2, "8 workers ({s8}) beat 2 ({s2})");
        assert!(s8 <= 8.0 + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let costs: Vec<f64> = (0..500)
            .map(|i| ((i * 37 % 11) + 1) as f64 * 1e-4)
            .collect();
        let a = sim(6).simulate(&costs);
        let b = sim(6).simulate(&costs);
        assert_eq!(a, b);
        let c = StealSimulator::new(StealSimParams {
            workers: 6,
            seed: 999,
            ..Default::default()
        })
        .simulate(&costs);
        // Different seed may differ, but bounds still hold.
        assert!(c.makespan >= a.total_work / 6.0 - 1e-12);
    }

    #[test]
    fn empty_task_list() {
        let out = sim(4).simulate(&[]);
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn one_giant_task_defeats_parallelism() {
        let mut costs = uniform(64, 1e-6);
        costs[0] = 1.0;
        let out = sim(8).simulate(&costs);
        assert!(out.makespan >= 1.0);
        assert!(out.makespan < 1.1);
        assert!(out.utilization < 0.25, "utilization should tank");
    }

    #[test]
    fn utilization_bounded() {
        let costs = uniform(1000, 1e-3);
        for p in [1usize, 3, 7] {
            let u = sim(p).simulate(&costs).utilization;
            assert!(u > 0.0 && u <= 1.0 + 1e-12, "p={p}: u={u}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large virtual task sets are too slow under the interpreter")]
    fn steals_scale_sanely() {
        // For a balanced cilk_for, steals are O(p log n), far below n.
        let costs = uniform(10_000, 1e-4);
        let out = sim(12).simulate(&costs);
        assert!(out.steals > 0);
        assert!(out.steals < 2000, "excessive steals: {}", out.steals);
    }
}
