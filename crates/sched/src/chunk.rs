//! Cost-weighted chunking: split a sequence of work items with known
//! per-item costs into `parts` contiguous ranges of near-equal total
//! cost.
//!
//! This is the list-execution analog of `Octree::partition_leaves`
//! (which balances leaf *counts*): interaction-list entries have wildly
//! different costs (`len_a * len_q` for a near leaf×leaf block vs O(1)
//! for a far approximation), so balancing entry counts would reproduce
//! exactly the static-segment imbalance the paper's Figs. 5–6 complain
//! about. The greedy fair-share rule below instead closes a chunk once
//! it has accumulated its share of the *remaining* cost, which bounds
//! any chunk's overshoot by one item.
//!
//! Determinism contract: the output depends only on `costs` and
//! `parts` — never on thread count or timing — so callers can bake the
//! partition into a prebuilt structure and replay it identically at any
//! pool width.

use std::ops::Range;

/// Split `0..costs.len()` into exactly `parts` contiguous ranges whose
/// total costs are approximately balanced. Trailing ranges may be empty
/// when there are fewer items than parts (`parts == 0` yields no
/// ranges). Zero-cost items are carried along with their neighbors.
pub fn partition_by_cost(costs: &[u64], parts: usize) -> Vec<Range<usize>> {
    let mut ranges = Vec::with_capacity(parts);
    if parts == 0 {
        return ranges;
    }
    let total: u128 = costs.iter().map(|&c| c as u128).sum();
    let mut assigned: u128 = 0;
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for (i, &c) in costs.iter().enumerate() {
        acc += c as u128;
        let remaining_parts = (parts - ranges.len()) as u128;
        // Fair share of what is left to hand out, rounded up so the
        // last part is never forced to absorb everyone's rounding.
        let target = (total - assigned).div_ceil(remaining_parts);
        if acc >= target && ranges.len() < parts - 1 {
            ranges.push(start..i + 1);
            assigned += acc;
            acc = 0;
            start = i + 1;
        }
    }
    ranges.push(start..costs.len());
    while ranges.len() < parts {
        let end = costs.len();
        ranges.push(end..end);
    }
    ranges
}

/// Dense item → chunk lookup for a contiguous range partition (the
/// output shape of [`partition_by_cost`]): `lookup[i]` is the index of
/// the range containing item `i`. Empty trailing ranges claim nothing.
/// Items not covered by any range (only possible for malformed inputs)
/// are left at `u32::MAX`.
///
/// `core::delta`'s entry-granular cache uses this to splice a
/// recomputed entry's output back into its chunk's cached stream
/// without a per-query binary search.
pub fn chunk_lookup(ranges: &[Range<usize>], n_items: usize) -> Vec<u32> {
    let mut lookup = vec![u32::MAX; n_items];
    for (c, r) in ranges.iter().enumerate() {
        for slot in lookup.get_mut(r.clone()).unwrap_or(&mut []) {
            *slot = c as u32;
        }
    }
    lookup
}

/// Inverted index from integer keys (atom or node ids) to the chunks
/// whose entries cover them.
///
/// Built once per list build from `(key_range, chunk_id)` pairs; a
/// perturbation query then answers "which chunks must be re-executed
/// because key `k` changed?" in O(|answer|) without rescanning the
/// entry stream. The per-key chunk lists are sorted and deduplicated,
/// and the structure depends only on its inputs — same determinism
/// contract as `partition_by_cost`.
#[derive(Clone, Debug, Default)]
pub struct CoverageIndex {
    chunks_of: Vec<Vec<u32>>,
}

impl CoverageIndex {
    /// Build from a stream of `(key_range, chunk_id)` coverage claims.
    /// Keys at or beyond `n_keys` are ignored (callers size `n_keys` to
    /// the full key universe up front). Pairs may repeat a chunk id for
    /// many ranges; per-key lists are deduplicated.
    pub fn build(n_keys: usize, covers: impl Iterator<Item = (Range<usize>, u32)>) -> Self {
        let mut chunks_of: Vec<Vec<u32>> = vec![Vec::new(); n_keys];
        for (range, chunk) in covers {
            for key in range {
                if let Some(list) = chunks_of.get_mut(key) {
                    if list.last() != Some(&chunk) {
                        list.push(chunk);
                    }
                }
            }
        }
        for list in &mut chunks_of {
            list.sort_unstable();
            list.dedup();
        }
        CoverageIndex { chunks_of }
    }

    /// Chunk ids whose entries cover `key` (sorted, deduplicated).
    /// Unknown keys map to the empty slice.
    pub fn chunks_for(&self, key: usize) -> &[u32] {
        self.chunks_of.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of keys the index was built over.
    pub fn n_keys(&self) -> usize {
        self.chunks_of.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.chunks_of
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<u32>())
            .sum::<usize>()
            + self.chunks_of.capacity() * std::mem::size_of::<Vec<u32>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_covers(costs: &[u64], parts: usize) -> Vec<Range<usize>> {
        let ranges = partition_by_cost(costs, parts);
        assert_eq!(ranges.len(), parts.max(usize::from(parts > 0)));
        let mut next = 0usize;
        for r in &ranges {
            assert_eq!(r.start, next, "ranges must tile contiguously");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, costs.len(), "ranges must cover every item");
        ranges
    }

    #[test]
    fn covers_and_is_contiguous() {
        for parts in 1..9 {
            check_covers(&[], parts);
            check_covers(&[5], parts);
            check_covers(&[1, 1, 1, 1, 1, 1, 1], parts);
            check_covers(&[1000, 1, 1, 1, 1000], parts);
            check_covers(&[0, 0, 7, 0, 0], parts);
        }
    }

    #[test]
    fn zero_parts_yields_no_ranges() {
        assert!(partition_by_cost(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn balances_uniform_costs_like_count_partition() {
        let costs = vec![3u64; 64];
        let ranges = partition_by_cost(&costs, 4);
        for r in &ranges {
            assert_eq!(r.len(), 16);
        }
    }

    #[test]
    fn heavy_item_gets_isolated() {
        // One item carrying ~all the cost should not drag a long tail
        // of light items into its chunk.
        let mut costs = vec![1u64; 32];
        costs[5] = 100_000;
        let ranges = partition_by_cost(&costs, 4);
        let heavy_chunk = ranges.iter().find(|r| r.contains(&5)).unwrap().clone();
        let heavy_cost: u64 = costs[heavy_chunk.clone()].iter().sum();
        // The heavy chunk ends right after the heavy item.
        assert_eq!(heavy_chunk.end, 6);
        assert!(heavy_cost >= 100_000);
    }

    #[test]
    fn deterministic_across_calls() {
        let costs: Vec<u64> = (0..257).map(|i| (i * 2654435761u64) % 997).collect();
        let a = partition_by_cost(&costs, 64);
        let b = partition_by_cost(&costs, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_lookup_inverts_a_partition() {
        let costs: Vec<u64> = (0..100).map(|i| 1 + (i * 7919) % 23).collect();
        let ranges = partition_by_cost(&costs, 7);
        let lookup = chunk_lookup(&ranges, costs.len());
        for (c, r) in ranges.iter().enumerate() {
            for i in r.clone() {
                assert_eq!(lookup[i], c as u32);
            }
        }
        // Fewer items than parts: trailing empty ranges claim nothing.
        let ranges = partition_by_cost(&[5, 5], 4);
        let lookup = chunk_lookup(&ranges, 2);
        assert!(lookup.iter().all(|&c| (c as usize) < ranges.len()));
    }

    #[test]
    fn coverage_index_answers_membership() {
        // chunk 0 covers keys 0..4, chunk 1 covers 2..6 (overlap at 2,3),
        // chunk 2 claims 4..5 twice (dedup) and an out-of-range tail.
        let idx = CoverageIndex::build(
            6,
            vec![(0..4, 0u32), (2..6, 1), (4..5, 2), (4..5, 2), (5..9, 2)].into_iter(),
        );
        assert_eq!(idx.n_keys(), 6);
        assert_eq!(idx.chunks_for(0), &[0]);
        assert_eq!(idx.chunks_for(2), &[0, 1]);
        assert_eq!(idx.chunks_for(4), &[1, 2]);
        assert_eq!(idx.chunks_for(5), &[1, 2]);
        assert_eq!(idx.chunks_for(6), &[] as &[u32]);
        assert_eq!(idx.chunks_for(usize::MAX), &[] as &[u32]);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn coverage_index_is_deterministic() {
        let pairs: Vec<(Range<usize>, u32)> = (0..200)
            .map(|i| {
                let start = (i * 7919) % 97;
                (start..start + 5, (i % 13) as u32)
            })
            .collect();
        let a = CoverageIndex::build(101, pairs.clone().into_iter());
        let b = CoverageIndex::build(101, pairs.into_iter());
        for k in 0..101 {
            assert_eq!(a.chunks_for(k), b.chunks_for(k));
        }
    }

    #[test]
    fn max_chunk_overshoot_is_bounded_by_one_item() {
        let costs: Vec<u64> = (0..500).map(|i| 1 + (i * 7919) % 113).collect();
        let parts = 16;
        let total: u64 = costs.iter().sum();
        let max_item = *costs.iter().max().unwrap();
        let ranges = partition_by_cost(&costs, parts);
        for r in &ranges {
            let chunk: u64 = costs[r.clone()].iter().sum();
            // Greedy fair-share: a chunk closes at the first item that
            // reaches its share, so it exceeds the ideal share by less
            // than one item's cost.
            assert!(
                chunk <= total.div_ceil(parts as u64) + max_item,
                "chunk {r:?} cost {chunk} exceeds fair share + max item"
            );
        }
    }
}
