//! # polaroct-sched
//!
//! The shared-memory scheduling layer: a from-scratch analog of the cilk++
//! runtime the paper uses for IMPLICIT DYNAMIC LOAD BALANCING (§IV.A):
//!
//! > "each thread maintains a double ended queue (deque) to store its
//! > outstanding work/tasks and adds the newly generated work to the
//! > bottom of the queue. On the other hand, when a thread runs out of
//! > work, it chooses a random victim thread and steals work from top of
//! > the victim's queue".
//!
//! Two components:
//!
//! * [`pool::WorkStealingPool`] — a real Chase–Lev work-stealing pool
//!   (crossbeam-deque) executing index-space tasks across OS threads,
//!   with steal counters. This is the Blumofe–Leiserson scheduler the
//!   paper's cilk++ runtime implements.
//! * [`sim::StealSimulator`] — a deterministic *makespan simulator* of the
//!   same scheduler: given per-task costs, it replays randomized work
//!   stealing on `p` virtual workers and reports the parallel completion
//!   time, steal count and per-worker utilization. The cluster simulator
//!   uses it to obtain intra-node p-thread times on hosts with fewer
//!   physical cores (DESIGN.md §2's substitution for the paper's 12-core
//!   nodes), relying on the `T_p ≤ T_1/p + O(T_∞)` bound the paper quotes
//!   from Blumofe & Leiserson.

//!
//! `polaroct-sched` is the **only** workspace crate allowed to contain
//! `unsafe` code (the audited allowlist of `cargo xtask analyze`): the
//! pool's result-collection path writes disjoint slots of one output
//! buffer from many workers. Every `unsafe` site carries a `// SAFETY:`
//! comment (machine-checked by the linter), the crate root denies
//! `unsafe_code` so new sites need an explicit scoped `allow`, and the
//! disjointness argument itself is model-checked exhaustively in
//! `polaroct-modelcheck` and exercised under Miri.

// New `unsafe` must opt in via a scoped `#[allow(unsafe_code)]` next to
// its SAFETY comment; see `slice::SyncSlice` for the audited pattern.
#![deny(unsafe_code)]

pub mod chunk;
pub mod pool;
pub mod radix;
pub mod reduce;
pub mod sim;
mod slice;
pub mod sync;

pub use chunk::{chunk_lookup, partition_by_cost, CoverageIndex};
pub use pool::{PoolMetrics, WorkStealingPool};
pub use radix::par_sort_pairs;
pub use sim::{SimOutcome, StealSimParams, StealSimulator};
