//! `SyncSlice`: the crate's one shared-mutation primitive.
//!
//! A Send+Sync wrapper allowing pool workers to write *disjoint* slots
//! of one output buffer with no per-slot synchronization. Both
//! [`crate::pool`] (result collection for `try_map`) and
//! [`crate::radix`] (the scatter phase of the parallel radix sort)
//! build on it; each call site documents why its index sets are
//! disjoint.
//!
//! The write-once/disjointness protocol this type relies on is verified
//! two ways beyond code review: the interleaving explorer in
//! `crates/modelcheck` checks it exhaustively on small configurations
//! (`tests/syncslice_model.rs` for the try_map partition,
//! `tests/radix_model.rs` for the histogram/prefix-sum scatter
//! partition), and the `sched` unit tests run the real thing under Miri
//! in the nightly CI job.

pub(crate) struct SyncSlice<T>(*mut T, usize);

// SAFETY: the pointer refers to a live `Vec` owned by the caller, which
// outlives the scoped threads that use this handle; sending the pointer
// itself is therefore fine whenever `T: Send`.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SyncSlice<T> {}

// SAFETY: shared use is confined to `write`, whose contract demands
// disjoint indices — concurrent calls never alias the same slot, so no
// `&self` method can observe a data race.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SyncSlice<T> {}

impl<T> SyncSlice<T> {
    /// Wrap `len` slots starting at `ptr`. The caller keeps ownership of
    /// the allocation and must keep it alive (and un-reallocated) for
    /// the lifetime of this handle.
    pub(crate) fn new(ptr: *mut T, len: usize) -> SyncSlice<T> {
        SyncSlice(ptr, len)
    }

    // SAFETY: (contract) callers guarantee `i < len` and that no two
    // concurrent calls share the same `i`.
    #[allow(unsafe_code)]
    pub(crate) unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.1);
        // SAFETY: `i < self.1` (slot count) by the caller contract, so
        // the offset stays inside the allocation; disjoint `i` across
        // threads means no two writes alias.
        #[allow(unsafe_code)]
        unsafe {
            self.0.add(i).write(v)
        };
    }
}
