//! A Chase–Lev work-stealing pool over index-space tasks.
//!
//! Semantics mirror a `cilk_for` over `0..n`: the index range is split
//! lazily; each worker pops from the bottom of its own deque and steals
//! from the *top* of a random victim's deque when idle (stealing the
//! oldest — and therefore largest — subrange, which is also the
//! least-recently-touched data, the cache-friendliness argument of §V.A).

use crate::slice::SyncSlice;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crossbeam_deque::{Injector, Steal, Stealer, Worker};

/// A contiguous index subrange of the task space.
type Chunk = (usize, usize);

/// Counters exposed after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Successful steals across all workers.
    pub steals: usize,
    /// Tasks executed in total (== `n` of the run).
    pub tasks: usize,
    /// Tasks whose body panicked (contained per task; a panicking task
    /// counts toward completion so sibling workers never spin forever).
    pub panics: usize,
}

/// A fixed-width work-stealing thread pool.
///
/// The pool is created per call site (cheap: threads are scoped); `width`
/// is the number of workers `p`. On a host with fewer cores the pool still
/// *works* — the OS time-slices — it just can't show real speedup, which
/// is why the cluster experiments use [`crate::sim`] for timing instead.
pub struct WorkStealingPool {
    width: usize,
    /// Minimum indices per executed chunk (the `grain`): controls the
    /// task-creation overhead exactly like cilk's grain size.
    grain: usize,
}

impl WorkStealingPool {
    pub fn new(width: usize) -> Self {
        // PANIC-OK: precondition assert — a zero-width pool is a caller bug.
        assert!(width >= 1);
        WorkStealingPool { width, grain: 1 }
    }

    /// Set the splitting grain (indices per leaf task).
    pub fn with_grain(mut self, grain: usize) -> Self {
        assert!(grain >= 1);
        self.grain = grain;
        self
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// Execute `body(i)` for every `i in 0..n`, dynamically load-balanced.
    /// `body` must be safe to call concurrently for distinct indices.
    ///
    /// A panicking task is contained (`catch_unwind`) and counted in
    /// [`PoolMetrics::panics`]; it still advances the completion counter,
    /// so one bad task never hangs its sibling workers.
    pub fn run<F>(&self, n: usize, body: F) -> PoolMetrics
    where
        F: Fn(usize) + Sync,
    {
        let contained = |i: usize, panics: &AtomicUsize| {
            let guarded = std::panic::AssertUnwindSafe(|| body(i));
            if std::panic::catch_unwind(guarded).is_err() {
                panics.fetch_add(1, Ordering::Relaxed);
            }
        };
        if n == 0 {
            return PoolMetrics::default();
        }
        if self.width == 1 {
            let panics = AtomicUsize::new(0);
            for i in 0..n {
                contained(i, &panics);
            }
            return PoolMetrics {
                steals: 0,
                tasks: n,
                panics: panics.load(Ordering::Relaxed),
            };
        }

        let injector: Injector<Chunk> = Injector::new();
        injector.push((0, n));
        let steals = AtomicUsize::new(0);
        let panics = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);

        let workers: Vec<Worker<Chunk>> = (0..self.width).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Chunk>> = workers.iter().map(|w| w.stealer()).collect();

        std::thread::scope(|scope| {
            for (wid, worker) in workers.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let steals = &steals;
                let panics = &panics;
                let done = &done;
                let contained = &contained;
                let grain = self.grain;
                let width = self.width;
                scope.spawn(move || {
                    // Cheap deterministic xorshift for victim selection.
                    let mut rng_state = (wid as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    let mut next_victim = move || {
                        rng_state ^= rng_state << 13;
                        rng_state ^= rng_state >> 7;
                        rng_state ^= rng_state << 17;
                        (rng_state as usize) % width
                    };
                    loop {
                        // 1. Own deque first.
                        let chunk = worker.pop().or_else(|| {
                            // 2. Global injector.
                            loop {
                                match injector.steal() {
                                    Steal::Success(c) => return Some(c),
                                    Steal::Empty => return None,
                                    Steal::Retry => continue,
                                }
                            }
                        });
                        let chunk = match chunk {
                            Some(c) => Some(c),
                            None => {
                                // 3. Steal from a random victim's top.
                                let mut found = None;
                                for _ in 0..4 * width {
                                    let v = next_victim();
                                    if v == wid {
                                        continue;
                                    }
                                    match stealers[v].steal() {
                                        Steal::Success(c) => {
                                            steals.fetch_add(1, Ordering::Relaxed);
                                            found = Some(c);
                                            break;
                                        }
                                        Steal::Empty | Steal::Retry => continue,
                                    }
                                }
                                found
                            }
                        };
                        match chunk {
                            Some((lo, hi)) => {
                                let mut hi = hi;
                                // Lazy binary splitting: keep half for
                                // thieves while the chunk is large.
                                while hi - lo > grain {
                                    let mid = lo + (hi - lo) / 2;
                                    worker.push((mid, hi));
                                    hi = mid;
                                }
                                for i in lo..hi {
                                    contained(i, panics);
                                }
                                done.fetch_add(hi - lo, Ordering::Release);
                                // Drain what we pushed (or let thieves).
                            }
                            None => {
                                if done.load(Ordering::Acquire) >= n {
                                    break;
                                }
                                // Yield to the OS rather than spin: on
                                // machines with fewer cores than workers a
                                // busy-wait would starve the worker that
                                // actually holds the remaining work.
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });

        PoolMetrics {
            steals: steals.load(Ordering::Relaxed),
            tasks: n,
            panics: panics.load(Ordering::Relaxed),
        }
    }

    /// Map `0..n` through `f`, collecting results in index order.
    /// `None` slots mark tasks whose body panicked (count in the returned
    /// metrics); the caller decides whether to re-execute or fail.
    pub fn try_map<T, F>(&self, n: usize, f: F) -> (Vec<Option<T>>, PoolMetrics)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let metrics;
        {
            let slots = SyncSlice::new(out.as_mut_ptr(), n);
            metrics = self.run(n, |i| {
                let v = f(i);
                // SAFETY: `run` executes each index in `0..n` exactly once
                // (model-checked exhaustively in
                // `modelcheck/tests/pool_model.rs`), so every slot is
                // written by at most one thread and `i < n` always holds;
                // if `f(i)` panics we never reach the write and the slot
                // stays `None` (overwriting a `None` drops nothing). The
                // writes are published to this (borrowing) thread by the
                // scoped-thread joins inside `run`.
                #[allow(unsafe_code)]
                unsafe {
                    slots.write(i, Some(v))
                };
            });
        }
        (out, metrics)
    }

    /// Map `0..n` through `f`, collecting results in index order.
    /// Panics if any task panicked (the historical all-or-nothing
    /// contract); use [`WorkStealingPool::try_map`] to handle partial
    /// results.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let (slots, metrics) = self.try_map(n, f);
        // PANIC-OK: map's documented contract is all-or-nothing; try_map is the non-panicking path.
        assert_eq!(metrics.panics, 0, "{} pool task(s) panicked", metrics.panics);
        // PANIC-OK: same contract — try_map fills every slot exactly once when nothing panicked.
        slots.into_iter().map(|s| s.expect("every task runs exactly once")).collect()
    }
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("width", &self.width)
            .field("grain", &self.grain)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Small enough to run under Miri (the advisory nightly CI job):
    /// exercises the whole `SyncSlice` unsafe path — raw-pointer writes
    /// from several real threads into one output buffer — so Miri's
    /// aliasing and data-race checkers audit the disjointness argument
    /// on every nightly run.
    #[test]
    fn syncslice_disjoint_writes_small() {
        let pool = WorkStealingPool::new(3);
        let (slots, m) = pool.try_map(17, |i| i * 7);
        assert_eq!(m.panics, 0);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, Some(i * 7), "index {i}");
        }
        // And the panicking variant: the skipped slot stays None.
        let (slots, m) = pool.try_map(9, |i| {
            if i == 4 {
                panic!("injected");
            }
            i
        });
        assert_eq!(m.panics, 1);
        assert!(slots[4].is_none());
        assert_eq!(slots[8], Some(8));
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k tasks is too slow under the interpreter")]
    fn executes_every_index_exactly_once() {
        let n = 10_000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkStealingPool::new(4);
        let m = pool.run(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(m.tasks, n);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let pool = WorkStealingPool::new(1);
        let sum = AtomicU64::new(0);
        let m = pool.run(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert_eq!(m.steals, 0);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = WorkStealingPool::new(4);
        let m = pool.run(0, |_| panic!("must not run"));
        assert_eq!(m, PoolMetrics::default());
    }

    #[test]
    fn map_preserves_index_order() {
        let pool = WorkStealingPool::new(3);
        let v = pool.map(257, |i| i * i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn grain_respected_and_results_identical() {
        let pool = WorkStealingPool::new(2).with_grain(64);
        let v = pool.map(1000, |i| i + 1);
        assert_eq!(v[999], 1000);
    }

    #[test]
    fn map_of_zero_tasks_is_empty() {
        let pool = WorkStealingPool::new(4);
        let v: Vec<usize> = pool.map(0, |_| panic!("must not run"));
        assert!(v.is_empty());
    }

    #[test]
    fn grain_larger_than_n_runs_everything() {
        // One chunk never splits — a single worker executes all of it.
        let pool = WorkStealingPool::new(4).with_grain(100);
        let counts: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let m = pool.run(5, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(m.tasks, 5);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
        let v = pool.map(5, |i| i * 10);
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn panicking_task_is_contained_and_counted() {
        let n = 200;
        let ran: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkStealingPool::new(4);
        let m = pool.run(n, |i| {
            ran[i].fetch_add(1, Ordering::Relaxed);
            if i == 17 || i == 101 {
                panic!("injected");
            }
        });
        assert_eq!(m.panics, 2);
        assert_eq!(m.tasks, n);
        // Every other task still ran exactly once — no hang, no skips.
        for (i, c) in ran.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn panicking_task_contained_on_single_worker() {
        let pool = WorkStealingPool::new(1);
        let m = pool.run(10, |i| {
            if i == 3 {
                panic!("injected");
            }
        });
        assert_eq!(m.panics, 1);
    }

    #[test]
    fn try_map_leaves_none_for_panicked_slots() {
        let pool = WorkStealingPool::new(3);
        let (slots, m) = pool.try_map(64, |i| {
            if i == 20 {
                panic!("injected");
            }
            i * 3
        });
        assert_eq!(m.panics, 1);
        for (i, s) in slots.iter().enumerate() {
            if i == 20 {
                assert!(s.is_none());
            } else {
                assert_eq!(*s, Some(i * 3), "index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "pool task(s) panicked")]
    fn map_still_fails_fast_on_task_panic() {
        let pool = WorkStealingPool::new(2);
        let _ = pool.map(16, |i| {
            if i == 5 {
                panic!("injected");
            }
            i
        });
    }

    #[test]
    #[cfg_attr(miri, ignore = "50k-iteration busy loops are too slow under the interpreter")]
    fn uneven_task_costs_still_complete() {
        // A few heavy tasks among many light ones — stealing must cover.
        let n = 512;
        let done = AtomicUsize::new(0);
        let pool = WorkStealingPool::new(4);
        pool.run(n, |i| {
            if i % 100 == 0 {
                // Simulated heavy task.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k * k);
                }
                std::hint::black_box(acc);
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), n);
    }
}
