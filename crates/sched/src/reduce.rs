//! Parallel reductions on the work-stealing pool.
//!
//! The drivers mostly reduce through the simulated MPI collectives, but
//! in-process users (examples, tools) want a plain parallel fold over
//! index space with deterministic results. [`WorkStealingPool::reduce`]
//! gives an order-insensitive (commutative + associative) reduction;
//! [`WorkStealingPool::sum_f64`] adds a deterministic pairwise summation
//! that is *independent of scheduling* (fixed tree shape), so repeated
//! runs agree bitwise.

use crate::pool::WorkStealingPool;
use parking_lot::Mutex;

impl WorkStealingPool {
    /// Reduce `f(0) ⊕ f(1) ⊕ ... ⊕ f(n−1)` with a commutative+associative
    /// `combine`. Result order is unspecified, so `combine` must be
    /// insensitive to it (use [`Self::sum_f64`] for floats when bitwise
    /// determinism matters).
    pub fn reduce<T, F, C>(&self, n: usize, identity: T, f: F, combine: C) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if n == 0 {
            return identity;
        }
        let acc = Mutex::new(identity);
        self.run(n, |i| {
            let v = f(i);
            let mut guard = acc.lock();
            let cur = guard.clone();
            *guard = combine(cur, v);
        });
        acc.into_inner()
    }

    /// Deterministic pairwise (tree) summation of `f(i)` over `0..n`:
    /// leaves are computed in parallel, the combination tree has a fixed
    /// shape, so the result is bit-identical across runs and pool widths.
    pub fn sum_f64<F>(&self, n: usize, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let leaves = self.map(n, &f);
        pairwise_sum(&leaves)
    }
}

/// Fixed-shape pairwise summation (better error growth than sequential:
/// O(log n) vs O(n) worst-case accumulated rounding).
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_matches_sequential_for_exact_values() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&xs), 499_500.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[7.0]), 7.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "100k-element sweep is too slow under the interpreter")]
    fn pairwise_is_more_accurate_than_naive_on_adversarial_input() {
        // Alternating large/small values accumulate error sequentially.
        let xs: Vec<f64> = (0..100_000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 })
            .collect();
        let seq: f64 = xs.iter().sum();
        let pair = pairwise_sum(&xs);
        // Exact value: 5e4 * 1e16 + 5e4.
        let exact = 5e4 * 1e16 + 5e4;
        assert!((pair - exact).abs() <= (seq - exact).abs());
    }

    #[test]
    fn pool_reduce_counts() {
        let pool = WorkStealingPool::new(4);
        let total = pool.reduce(1000, 0usize, |i| i, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn pool_reduce_empty_returns_identity() {
        let pool = WorkStealingPool::new(3);
        assert_eq!(pool.reduce(0, 42i64, |_| 0, |a, b| a + b), 42);
    }

    #[test]
    #[cfg_attr(miri, ignore = "5k parallel leaves is too slow under the interpreter")]
    fn sum_f64_deterministic_across_widths() {
        let f = |i: usize| ((i as f64) * 0.1).sin() * 1e8;
        let s1 = WorkStealingPool::new(1).sum_f64(5000, f);
        let s4 = WorkStealingPool::new(4).sum_f64(5000, f);
        // Bitwise identical: fixed tree shape regardless of scheduling.
        assert_eq!(s1.to_bits(), s4.to_bits());
    }

    #[test]
    fn reduce_max() {
        let pool = WorkStealingPool::new(2);
        let m = pool.reduce(
            257,
            f64::NEG_INFINITY,
            |i| (i as f64 * 37.0) % 101.0,
            f64::max,
        );
        let brute = (0..257)
            .map(|i| (i as f64 * 37.0) % 101.0)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m, brute);
    }
}
