//! Parallel MSB radix sort over `(u64 key, u32 payload)` pairs.
//!
//! Built for the octree's Morton-code sort (key = Morton code, payload
//! = original point index), but generic over any pair stream whose
//! payloads are distinct: `(key, payload)` is then a *total* order with
//! a unique sorted sequence, so every execution — serial or parallel,
//! any worker count, any interleaving — produces byte-identical output.
//!
//! One most-significant-byte pass, then comparison sorts per bucket:
//!
//! 1. **Histogram**: the input is cut into `C` contiguous chunks; each
//!    pool task counts its chunk's keys into a 256-bucket histogram on
//!    `key >> 56`.
//! 2. **Prefix sum** (serial, O(256·C)): a column-major exclusive scan
//!    assigns every `(chunk, bucket)` cell a start offset. Cells tile
//!    `0..n` — consecutive, disjoint, exhaustive — because the scan
//!    visits buckets in order and, within a bucket, chunks in order.
//! 3. **Scatter**: each chunk task replays its elements in order,
//!    writing each to its cell's next slot through a [`SyncSlice`].
//!    Writes are race-free because cells are disjoint and a cell is
//!    written only by its own chunk's task (the partition protocol is
//!    model-checked in `modelcheck/tests/radix_model.rs`, including a
//!    deliberately-broken overlapping-offset variant the explorer must
//!    flag as a race).
//! 4. **Per-bucket sort**: buckets are now contiguous and independent;
//!    each is comparison-sorted by `(key, payload)` as a pool task.
//!
//! Step 3 additionally preserves *chunk order within a cell*, but step 4
//! does not rely on it: the final order is pinned by the total order
//! alone, which is what makes the result schedule-independent.

use crate::pool::WorkStealingPool;
use crate::slice::SyncSlice;

/// Number of top-byte buckets in the MSB pass.
pub const RADIX_BUCKETS: usize = 256;

/// Below this size the serial `sort_unstable` fallback wins; the output
/// is identical either way (unique total order), so the cutoff is a
/// pure performance knob.
const PAR_CUTOFF: usize = 2048;

/// Chunks per worker: more chunks than workers smooths load imbalance
/// from skewed key distributions.
const CHUNKS_PER_WORKER: usize = 4;

#[inline]
fn bucket_of(key: u64) -> usize {
    (key >> 56) as usize
}

/// Cut `0..n` into `chunks` near-even contiguous ranges.
fn chunk_bounds(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let base = n / chunks;
    let extra = n % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// 256-bucket histogram of one chunk's top key bytes.
pub fn chunk_histogram(pairs: &[(u64, u32)]) -> Vec<u32> {
    let mut hist = vec![0u32; RADIX_BUCKETS];
    for &(key, _) in pairs {
        hist[bucket_of(key)] += 1;
    }
    hist
}

/// Column-major exclusive prefix sum over per-chunk histograms.
///
/// Returns `(offsets, bucket_ranges)` where `offsets[c][b]` is the
/// output index at which chunk `c`'s bucket-`b` elements begin, and
/// `bucket_ranges[b]` is bucket `b`'s full `(begin, end)` range. The
/// `(chunk, bucket)` cells `offsets[c][b] .. offsets[c][b] + hist[c][b]`
/// partition `0..n` exactly — this is the disjointness invariant the
/// scatter's `SyncSlice` writes rely on.
pub fn scatter_offsets(hists: &[Vec<u32>]) -> (Vec<Vec<usize>>, Vec<(usize, usize)>) {
    let chunks = hists.len();
    let mut offsets = vec![vec![0usize; RADIX_BUCKETS]; chunks];
    let mut bucket_ranges = vec![(0usize, 0usize); RADIX_BUCKETS];
    let mut cursor = 0usize;
    for b in 0..RADIX_BUCKETS {
        let begin = cursor;
        for c in 0..chunks {
            offsets[c][b] = cursor;
            cursor += hists[c][b] as usize;
        }
        bucket_ranges[b] = (begin, cursor);
    }
    (offsets, bucket_ranges)
}

/// Sort `(key, payload)` pairs ascending by `(key, payload)` on `pool`.
///
/// When payloads are distinct (the intended use: payload = original
/// index) the comparison key is a total order, so the result is the
/// unique sorted sequence — byte-identical to
/// `pairs.to_vec().sort_unstable()` at every pool width.
pub fn par_sort_pairs(pool: &WorkStealingPool, pairs: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let n = pairs.len();
    if n < PAR_CUTOFF || pool.width() == 1 {
        let mut out = pairs.to_vec();
        out.sort_unstable();
        return out;
    }

    // 1. Per-chunk histograms (pool-mapped).
    let chunks = (pool.width() * CHUNKS_PER_WORKER).min(n);
    let bounds = chunk_bounds(n, chunks);
    let hists: Vec<Vec<u32>> = pool.map(chunks, |c| {
        let (lo, hi) = bounds[c];
        chunk_histogram(&pairs[lo..hi])
    });

    // 2. Serial prefix sum assigning disjoint (chunk, bucket) cells.
    let (offsets, bucket_ranges) = scatter_offsets(&hists);

    // 3. Scatter into bucket order through a SyncSlice.
    let mut scattered: Vec<(u64, u32)> = vec![(0, 0); n];
    {
        let slots = SyncSlice::new(scattered.as_mut_ptr(), n);
        let offsets = &offsets;
        let bounds = &bounds;
        pool.run(chunks, |c| {
            let mut cursor: Vec<usize> = offsets[c].clone();
            let (lo, hi) = bounds[c];
            for &pair in &pairs[lo..hi] {
                let b = bucket_of(pair.0);
                // SAFETY: `cursor[b]` walks chunk `c`'s (chunk, bucket)
                // cell, which `scatter_offsets` carved disjoint from
                // every other task's cells and inside `0..n` (the cells
                // tile `0..n`; cell width == this chunk's bucket-b
                // count, and exactly that many writes occur). `run`
                // executes each chunk exactly once, so no two writes
                // alias. Model-checked in
                // `modelcheck/tests/radix_model.rs`; published to this
                // thread by the scoped joins inside `run`.
                #[allow(unsafe_code)]
                unsafe {
                    slots.write(cursor[b], pair)
                };
                cursor[b] += 1;
            }
        });
    }

    // 4. Independent per-bucket comparison sorts (pool-mapped), then a
    // serial concatenation in bucket order.
    let sorted: Vec<Vec<(u64, u32)>> = pool.map(RADIX_BUCKETS, |b| {
        let (lo, hi) = bucket_ranges[b];
        let mut bucket = scattered[lo..hi].to_vec();
        bucket.sort_unstable();
        bucket
    });
    let mut out = Vec::with_capacity(n);
    for bucket in &sorted {
        out.extend_from_slice(bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sort(pairs: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut v = pairs.to_vec();
        v.sort_unstable();
        v
    }

    /// Deterministic pseudo-random pairs with heavy key duplication
    /// (distinct payloads, as in the Morton use case).
    fn synth_pairs(n: usize, seed: u64, key_mod: u64) -> Vec<(u64, u32)> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let key = if key_mod == 0 { state } else { state % key_mod };
                (key, i as u32)
            })
            .collect()
    }

    #[test]
    fn chunk_bounds_tile_the_range() {
        for (n, chunks) in [(10, 3), (7, 7), (100, 9), (5000, 16)] {
            let b = chunk_bounds(n, chunks);
            assert_eq!(b.len(), chunks);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[chunks - 1].1, n);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn scatter_offsets_partition_the_output() {
        let pairs = synth_pairs(4096, 0xABCD, 0);
        let bounds = chunk_bounds(pairs.len(), 7);
        let hists: Vec<Vec<u32>> =
            bounds.iter().map(|&(lo, hi)| chunk_histogram(&pairs[lo..hi])).collect();
        let (offsets, ranges) = scatter_offsets(&hists);
        // Cells are consecutive in column-major (bucket, chunk) order
        // and tile 0..n exactly.
        let mut expect = 0usize;
        for b in 0..RADIX_BUCKETS {
            assert_eq!(ranges[b].0, expect);
            for (c, hist) in hists.iter().enumerate() {
                assert_eq!(offsets[c][b], expect);
                expect += hist[b] as usize;
            }
            assert_eq!(ranges[b].1, expect);
        }
        assert_eq!(expect, pairs.len());
    }

    #[test]
    fn sorts_match_reference_across_shapes() {
        let pool = WorkStealingPool::new(4);
        for (n, key_mod) in [(0, 0), (1, 0), (100, 0), (5000, 0), (5000, 17), (4099, 1)] {
            let pairs = synth_pairs(n, 0x5EED ^ n as u64, key_mod);
            assert_eq!(
                par_sort_pairs(&pool, &pairs),
                reference_sort(&pairs),
                "n={n} key_mod={key_mod}"
            );
        }
    }

    #[test]
    fn identical_output_at_every_width() {
        let pairs = synth_pairs(10_000, 0xF00D, 255);
        let expect = reference_sort(&pairs);
        for width in [1, 2, 3, 4, 8] {
            let pool = WorkStealingPool::new(width);
            assert_eq!(par_sort_pairs(&pool, &pairs), expect, "width={width}");
        }
    }

    #[test]
    fn all_equal_keys_sort_by_payload() {
        let pairs: Vec<(u64, u32)> = (0..6000).rev().map(|i| (42, i as u32)).collect();
        let pool = WorkStealingPool::new(3);
        let sorted = par_sort_pairs(&pool, &pairs);
        for (i, &(k, p)) in sorted.iter().enumerate() {
            assert_eq!((k, p), (42, i as u32));
        }
    }

    #[test]
    fn keys_spanning_all_top_bytes() {
        // Force every one of the 256 buckets to be non-empty.
        let pairs: Vec<(u64, u32)> =
            (0..PAR_CUTOFF * 2).map(|i| (((i % 256) as u64) << 56 | i as u64, i as u32)).collect();
        let pool = WorkStealingPool::new(4);
        assert_eq!(par_sort_pairs(&pool, &pairs), reference_sort(&pairs));
    }
}
