//! Facade over the sync primitives the scheduler uses.
//!
//! Normal builds re-export `std::sync::atomic` unchanged — zero cost,
//! zero behavioral difference. Builds with `RUSTFLAGS="--cfg modelcheck"`
//! swap in the instrumented shims from `polaroct-modelcheck`, whose
//! operations are schedule points for the bounded-interleaving explorer
//! (and which fall back to plain sequentially-consistent behavior when no
//! exploration is active, so a `--cfg modelcheck` build still passes the
//! regular test suite).
//!
//! Code under `crates/sched` should import atomics from here rather than
//! from `std` directly; that keeps the concurrency kernel permanently
//! one `--cfg` away from exhaustive schedule exploration. The faithful
//! protocol models that are explored in CI live in
//! `crates/modelcheck/tests/` (see DESIGN.md §9).

#[cfg(not(modelcheck))]
pub use std::sync::atomic;

#[cfg(modelcheck)]
pub use polaroct_modelcheck::sync::atomic;
