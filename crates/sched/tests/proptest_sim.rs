//! Property tests: the work-stealing makespan simulator respects the
//! classic scheduling bounds for arbitrary task-cost distributions.

use polaroct_sched::{StealSimParams, StealSimulator};
use proptest::prelude::*;

fn sim(p: usize, seed: u64) -> StealSimulator {
    StealSimulator::new(StealSimParams {
        workers: p,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn makespan_within_classic_bounds(
        costs in prop::collection::vec(1e-6f64..1e-2, 1..300),
        p in 1usize..16,
        seed in 0u64..100,
    ) {
        let out = sim(p, seed).simulate(&costs);
        let t1: f64 = costs.iter().sum();
        let cmax = costs.iter().cloned().fold(0.0f64, f64::max);
        // Lower bounds: work/p and the largest single task.
        prop_assert!(out.makespan >= t1 / p as f64 - 1e-12);
        prop_assert!(out.makespan >= cmax - 1e-12);
        // Upper bound: generous Graham-style 2x(T1/p) + span + overheads.
        let params = StealSimParams::default();
        let overhead = out.steals as f64 * params.steal_cost
            + costs.len() as f64 * params.task_overhead;
        let grain = (costs.len() / (8 * p)).max(1);
        let span = cmax * grain as f64 * 2.0;
        prop_assert!(
            out.makespan <= 2.0 * t1 / p as f64 + span + overhead + cmax + 1e-9,
            "makespan {} vs t1/p {} cmax {cmax}",
            out.makespan,
            t1 / p as f64
        );
    }

    #[test]
    fn single_worker_is_exact_serial(costs in prop::collection::vec(1e-6f64..1e-2, 0..100)) {
        let out = sim(1, 7).simulate(&costs);
        let t1: f64 = costs.iter().sum();
        let expected = t1 + costs.len() as f64 * StealSimParams::default().task_overhead;
        prop_assert!((out.makespan - expected).abs() < 1e-12);
        prop_assert_eq!(out.steals, 0);
    }

    #[test]
    fn determinism(costs in prop::collection::vec(1e-5f64..1e-3, 1..100), p in 1usize..8) {
        let a = sim(p, 42).simulate(&costs);
        let b = sim(p, 42).simulate(&costs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_workers_never_hugely_worse(costs in prop::collection::vec(1e-5f64..1e-3, 16..200)) {
        // Not strictly monotone (random stealing), but p=8 should never be
        // slower than serial.
        let t1: f64 = costs.iter().sum();
        let out = sim(8, 3).simulate(&costs);
        prop_assert!(out.makespan <= t1 * 1.01 + 1e-6);
    }

    #[test]
    fn utilization_in_unit_interval(
        costs in prop::collection::vec(1e-6f64..1e-2, 1..200),
        p in 1usize..12,
    ) {
        let u = sim(p, 11).simulate(&costs).utilization;
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }
}
