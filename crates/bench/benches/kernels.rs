//! Criterion: the energy kernels — APPROX-INTEGRALS, PUSH, APPROX-E_pol —
//! against their naive counterparts, across ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaroct_core::born::born_radii_octree;
use polaroct_core::epol::{epol_octree_raw, ChargeBins};
use polaroct_core::naive::{born_radii_naive, epol_naive_raw};
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::synth;

fn prepared(n: usize) -> GbSystem {
    let mol = synth::protein("k", n, 3);
    GbSystem::prepare(&mol, &ApproxParams::default())
}

fn bench_born(c: &mut Criterion) {
    let sys = prepared(2_000);
    let mut g = c.benchmark_group("born_radii");
    g.sample_size(10);
    g.bench_function("naive_exact", |b| {
        b.iter(|| born_radii_naive(&sys, MathMode::Exact))
    });
    for &eps in &[0.1f64, 0.5, 0.9] {
        g.bench_with_input(
            BenchmarkId::new("octree", format!("eps{eps}")),
            &eps,
            |b, &eps| b.iter(|| born_radii_octree(&sys, eps, MathMode::Exact)),
        );
    }
    g.finish();
}

fn bench_epol(c: &mut Criterion) {
    let sys = prepared(2_000);
    let (born, _) = born_radii_naive(&sys, MathMode::Exact);
    let mut g = c.benchmark_group("epol");
    g.sample_size(10);
    g.bench_function("naive_exact", |b| {
        b.iter(|| epol_naive_raw(&sys, &born, MathMode::Exact))
    });
    for &eps in &[0.1f64, 0.5, 0.9] {
        let bins = ChargeBins::build(&sys, &born, eps);
        g.bench_with_input(
            BenchmarkId::new("octree", format!("eps{eps}")),
            &eps,
            |b, &eps| b.iter(|| epol_octree_raw(&sys, &bins, &born, eps, MathMode::Exact)),
        );
    }
    g.finish();
}

fn bench_binning(c: &mut Criterion) {
    let sys = prepared(4_000);
    let (born, _) = born_radii_naive(&sys, MathMode::Exact);
    c.bench_function("charge_binning_4k", |b| {
        b.iter(|| ChargeBins::build(&sys, &born, 0.9))
    });
}

fn bench_forces(c: &mut Criterion) {
    use polaroct_core::forces::{forces_cutoff, forces_naive};
    let sys = prepared(1_500);
    let (born, _) = born_radii_naive(&sys, MathMode::Exact);
    let mut g = c.benchmark_group("forces");
    g.sample_size(10);
    g.bench_function("naive_1500", |b| {
        b.iter(|| forces_naive(&sys, &born, 80.0, MathMode::Exact))
    });
    g.bench_function("cutoff25_1500", |b| {
        b.iter(|| forces_cutoff(&sys, &born, 80.0, 25.0, MathMode::Exact))
    });
    g.finish();
}

criterion_group!(benches, bench_born, bench_epol, bench_binning, bench_forces);
criterion_main!(benches);
