//! Criterion: work-stealing pool overhead and makespan-simulator speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaroct_sched::{StealSimParams, StealSimulator, WorkStealingPool};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_run_overhead");
    g.sample_size(10);
    for &workers in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let pool = WorkStealingPool::new(w).with_grain(64);
            let sink = AtomicU64::new(0);
            b.iter(|| {
                pool.run(10_000, |i| {
                    sink.fetch_add(i as u64, Ordering::Relaxed);
                })
            })
        });
    }
    g.finish();
}

fn bench_steal_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("steal_simulator");
    for &tasks in &[1_000usize, 10_000, 100_000] {
        let costs: Vec<f64> = (0..tasks).map(|i| 1e-6 * ((i % 17) + 1) as f64).collect();
        g.bench_with_input(BenchmarkId::new("tasks", tasks), &costs, |b, costs| {
            let sim = StealSimulator::new(StealSimParams {
                workers: 12,
                ..Default::default()
            });
            b.iter(|| sim.simulate(costs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pool, bench_steal_sim);
criterion_main!(benches);
