//! Criterion: simulated-MPI collective execution cost (the in-process
//! mechanics, not the modeled virtual time) across rank counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaroct_cluster::calib::KernelCosts;
use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
use polaroct_cluster::runner::run_spmd;

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmd_allreduce");
    g.sample_size(10);
    for &ranks in &[2usize, 8, 32] {
        let cluster = ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(ranks));
        g.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, _| {
            b.iter(|| {
                run_spmd(&cluster, KernelCosts::lonestar4_reference(), |ctx| {
                    let mut clock = ctx.clock;
                    let mut buf = vec![ctx.rank as f64; 1024];
                    ctx.comm.allreduce_sum(&mut buf, &mut clock);
                    ctx.clock = clock;
                    buf[0]
                })
            })
        });
    }
    g.finish();
}

fn bench_payload_size(c: &mut Criterion) {
    let cluster = ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(8));
    let mut g = c.benchmark_group("spmd_allreduce_payload");
    g.sample_size(10);
    for &words in &[64usize, 4_096, 65_536] {
        g.bench_with_input(BenchmarkId::new("f64s", words), &words, |b, &words| {
            b.iter(|| {
                run_spmd(&cluster, KernelCosts::lonestar4_reference(), |ctx| {
                    let mut clock = ctx.clock;
                    let mut buf = vec![1.0f64; words];
                    ctx.comm.allreduce_sum(&mut buf, &mut clock);
                    ctx.clock = clock;
                    buf[0]
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allreduce, bench_payload_size);
criterion_main!(benches);
