//! Criterion: octree construction cost (the §IV.C "pre-processing" step,
//! O(M log M)) across molecule sizes and leaf capacities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polaroct_molecule::synth;
use polaroct_octree::{build, BuildParams};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("octree_build");
    for &n in &[1_000usize, 4_000, 16_000] {
        let mol = synth::protein("b", n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("protein", n), &mol, |b, mol| {
            b.iter(|| build(&mol.positions, BuildParams::default()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("octree_build_leaf_capacity");
    let mol = synth::protein("b", 8_000, 9);
    for &cap in &[8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::new("cap", cap), &cap, |b, &cap| {
            b.iter(|| {
                build(
                    &mol.positions,
                    BuildParams {
                        leaf_capacity: cap,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    // Rigid re-pose vs full rebuild: the docking-reuse claim.
    use polaroct_geom::transform::Rotation;
    use polaroct_geom::{Transform, Vec3};
    let mol = synth::protein("t", 8_000, 5);
    let tree = build(&mol.positions, BuildParams::default());
    let t = Transform::about_pivot(
        Rotation::about_axis(Vec3::new(1.0, 1.0, 0.0), 0.7),
        Vec3::ZERO,
        Vec3::new(10.0, 0.0, 0.0),
    );
    let mut g = c.benchmark_group("octree_repose_vs_rebuild");
    g.bench_function("transform_in_place", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut tr| {
                tr.transform(&t);
                tr
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("full_rebuild", |b| {
        b.iter(|| build(&mol.positions, BuildParams::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_transform);
criterion_main!(benches);
