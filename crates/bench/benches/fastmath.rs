//! Criterion: approximate vs exact math (the §V.E 1.42x claim at the
//! scalar level).

use criterion::{criterion_group, criterion_main, Criterion};
use polaroct_geom::fastmath::{exp_fast, invcbrt_fast, rsqrt_fast};
use std::hint::black_box;

fn bench_scalars(c: &mut Criterion) {
    let xs: Vec<f64> = (1..1000).map(|i| i as f64 * 0.37 + 0.1).collect();

    let mut g = c.benchmark_group("rsqrt");
    g.bench_function("std", |b| {
        b.iter(|| xs.iter().map(|&x| 1.0 / black_box(x).sqrt()).sum::<f64>())
    });
    g.bench_function("fast", |b| {
        b.iter(|| xs.iter().map(|&x| rsqrt_fast(black_box(x))).sum::<f64>())
    });
    g.finish();

    let es: Vec<f64> = (1..1000).map(|i| -(i as f64) * 0.03).collect();
    let mut g = c.benchmark_group("exp");
    g.bench_function("std", |b| {
        b.iter(|| es.iter().map(|&x| black_box(x).exp()).sum::<f64>())
    });
    g.bench_function("fast", |b| {
        b.iter(|| es.iter().map(|&x| exp_fast(black_box(x))).sum::<f64>())
    });
    g.finish();

    let mut g = c.benchmark_group("invcbrt");
    g.bench_function("std_powf", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| black_box(x).powf(-1.0 / 3.0))
                .sum::<f64>()
        })
    });
    g.bench_function("fast", |b| {
        b.iter(|| xs.iter().map(|&x| invcbrt_fast(black_box(x))).sum::<f64>())
    });
    g.finish();
}

fn bench_gb_kernel(c: &mut Criterion) {
    use polaroct_core::gb::inv_f_gb;
    use polaroct_geom::fastmath::MathMode;
    let pairs: Vec<(f64, f64, f64)> = (0..1000)
        .map(|i| (1.0 + i as f64 * 0.1, 1.5, 2.0))
        .collect();
    let mut g = c.benchmark_group("inv_f_gb");
    g.bench_function("exact", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(r2, ri, rj)| inv_f_gb(black_box(r2), ri, rj, MathMode::Exact))
                .sum::<f64>()
        })
    });
    g.bench_function("approx", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(r2, ri, rj)| inv_f_gb(black_box(r2), ri, rj, MathMode::Approx))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scalars, bench_gb_kernel);
criterion_main!(benches);
