//! Criterion: nblist vs octree construction across cutoffs — the §II
//! space/time argument (octree cost is cutoff-independent; nblist cost and
//! size grow cubically).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaroct_baselines::NbList;
use polaroct_molecule::synth;
use polaroct_octree::{build, BuildParams};

fn bench_construction(c: &mut Criterion) {
    let mol = synth::protein("n", 6_000, 11);
    let mut g = c.benchmark_group("nblist_vs_octree_build");
    g.sample_size(10);
    for &cutoff in &[6.0f64, 12.0, 18.0] {
        g.bench_with_input(
            BenchmarkId::new("nblist", format!("{cutoff}A")),
            &cutoff,
            |b, &cut| b.iter(|| NbList::build(&mol, cut)),
        );
    }
    // One octree bar for comparison: independent of any cutoff.
    g.bench_function("octree_any_cutoff", |b| {
        b.iter(|| build(&mol.positions, BuildParams::default()))
    });
    g.finish();
}

fn bench_memory_report(c: &mut Criterion) {
    // Not a timing bench: emit the memory comparison alongside (criterion
    // runs it once per sample; keep it cheap).
    let mol = synth::protein("n", 6_000, 11);
    let tree_bytes = build(&mol.positions, BuildParams::default()).memory_bytes();
    for cutoff in [6.0, 12.0, 18.0] {
        let nb = NbList::build(&mol, cutoff);
        eprintln!(
            "# memory at cutoff {cutoff:>4} Å: nblist {:>12} B vs octree {:>10} B ({:>5.1}x)",
            nb.memory_bytes(),
            tree_bytes,
            nb.memory_bytes() as f64 / tree_bytes as f64
        );
    }
    c.bench_function("noop_memory_report", |b| b.iter(|| 0));
}

criterion_group!(benches, bench_construction, bench_memory_report);
criterion_main!(benches);
