//! # polaroct-bench
//!
//! Shared harness utilities for the table/figure regeneration binaries
//! (one binary per table and figure of the paper — see DESIGN.md §5 for
//! the index) and the Criterion microbenchmarks in `benches/`.
//!
//! All binaries print TSV to stdout (easy to plot) and an explanatory
//! header; they honor two environment variables:
//!
//! * `POLAROCT_QUICK=1` — subsample the ZDock suite (every 6th molecule)
//!   and shrink the large capsids, for smoke runs.
//! * `POLAROCT_OUT=<dir>` — also write each table to `<dir>/<name>.tsv`.

#![forbid(unsafe_code)]

use polaroct_cluster::machine::{ClusterSpec, MachineSpec, Placement};
use polaroct_core::drivers::DriverConfig;
use polaroct_molecule::synth::{zdock_suite, ZdockEntry};
use std::io::Write;

/// True when `POLAROCT_QUICK` is set to a non-empty, non-"0" value.
pub fn quick_mode() -> bool {
    std::env::var("POLAROCT_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The evaluation suite, honoring quick mode.
pub fn suite() -> Vec<ZdockEntry> {
    let full = zdock_suite();
    if quick_mode() {
        full.into_iter().step_by(6).collect()
    } else {
        full
    }
}

/// Scale factor for the big capsid experiments (BTV/CMV) in quick mode.
pub fn capsid_atoms(full_size: usize) -> usize {
    if quick_mode() {
        (full_size / 40).max(2_000)
    } else {
        full_size
    }
}

/// Atom count for the Blue Tongue Virus stand-in (§V.B: 6M atoms). The
/// default runs at 1M (same hollow-shell geometry, 6x less wall time);
/// `POLAROCT_FULL=1` restores the full 6M, `POLAROCT_QUICK=1` shrinks to
/// 50k for smoke runs.
pub fn btv_atoms() -> usize {
    if let Ok(v) = std::env::var("POLAROCT_BTV") {
        if let Ok(n) = v.parse::<usize>() {
            return n;
        }
    }
    if quick_mode() {
        50_000
    } else if std::env::var("POLAROCT_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        6_000_000
    } else {
        1_000_000
    }
}

/// Atom count for the Cucumber Mosaic Virus stand-in (509,640 atoms).
pub fn cmv_atoms() -> usize {
    if quick_mode() {
        30_000
    } else {
        509_640
    }
}

/// The standard driver configuration every figure binary uses.
pub fn std_config() -> DriverConfig {
    DriverConfig::default()
}

/// Lonestar4 cluster with P = `cores` single-threaded ranks (OCT_MPI).
pub fn mpi_cluster(cores: usize) -> ClusterSpec {
    ClusterSpec::new(MachineSpec::lonestar4(), Placement::distributed(cores))
}

/// Lonestar4 cluster with 2 ranks × 6 threads per node (OCT_MPI+CILK).
pub fn hybrid_cluster(cores: usize) -> ClusterSpec {
    let m = MachineSpec::lonestar4();
    ClusterSpec::new(m, Placement::hybrid_per_socket(cores, &m))
}

/// A TSV table accumulated in memory, printed to stdout and optionally
/// mirrored to `$POLAROCT_OUT/<name>.tsv`.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(name: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            header: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        // PANIC-OK: precondition assert — a mis-sized row is a harness bug, fail fast.
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience macro-ish helper for mixed cells.
    pub fn push(&mut self, cells: Vec<String>) {
        self.row(&cells);
    }

    /// Render as TSV.
    pub fn to_tsv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.header.join("\t"));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join("\t"));
            s.push('\n');
        }
        s
    }

    /// Print to stdout and mirror to `$POLAROCT_OUT` if set.
    pub fn emit(&self) {
        println!("# {}", self.name);
        print!("{}", self.to_tsv());
        if let Ok(dir) = std::env::var("POLAROCT_OUT") {
            if !dir.is_empty() {
                let _ = std::fs::create_dir_all(&dir);
                let path = std::path::Path::new(&dir).join(format!("{}.tsv", self.name));
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = f.write_all(self.to_tsv().as_bytes());
                }
            }
        }
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Format seconds compactly (µs → min range).
pub fn fmt_time(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{:.2}s", s)
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn fmt_time_ranges() {
        assert_eq!(fmt_time(5e-6), "5.0us");
        assert_eq!(fmt_time(0.5), "500.00ms");
        assert_eq!(fmt_time(2.0), "2.00s");
        assert_eq!(fmt_time(180.0), "3.0min");
    }

    #[test]
    fn clusters_have_expected_shape() {
        assert_eq!(mpi_cluster(144).placement.processes, 144);
        let h = hybrid_cluster(144);
        assert_eq!(h.placement.processes, 24);
        assert_eq!(h.placement.threads_per_process, 6);
    }
}
