//! Fig. 6: min/max running time of 20 runs vs core count.
//!
//! The paper's observation to reproduce: "the minimum running time of
//! OCT_MPI+CILK is always smaller than the minimum running time of
//! OCT_MPI after the core count reaches 180, whereas we always ... see the
//! opposite for the maximum running times" — the hybrid's 6x fewer ranks
//! mean less communication and less replication, but its cilk-layer
//! overhead keeps its best case behind at low core counts; comm jitter
//! (growing with rank count) drives OCT_MPI's max time up faster.

#![forbid(unsafe_code)]

use polaroct_bench::{btv_atoms, hybrid_cluster, mpi_cluster, std_config, Table};
use polaroct_cluster::noise::NoiseModel;
use polaroct_core::{run_oct_hybrid, run_oct_mpi, ApproxParams, GbSystem, WorkDivision};
use polaroct_molecule::synth;

fn main() {
    let n = btv_atoms();
    eprintln!("[fig6] preparing BTV-scale capsid ({n} atoms)...");
    let mol = synth::capsid("BTV-scale", n, 0xB7B);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = std_config();
    let noise = NoiseModel::default();
    const RUNS: usize = 20;

    let mut t = Table::new(
        "fig6_scalability_minmax",
        &[
            "cores",
            "mpi_min_s",
            "mpi_max_s",
            "hybrid_min_s",
            "hybrid_max_s",
            "hybrid_min_wins",
        ],
    );

    for cores in (12..=288).step_by(24) {
        let mpi = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(cores),
            WorkDivision::NodeNode,
        ).unwrap();
        let hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(cores)).unwrap();
        let (mpi_min, mpi_max) = noise.min_max(
            mpi.compute,
            mpi.comm + mpi.wait,
            mpi_cluster(cores).placement.processes,
            RUNS,
            cores as u64,
        );
        let (hyb_min, hyb_max) = noise.min_max(
            hyb.compute,
            hyb.comm + hyb.wait,
            hybrid_cluster(cores).placement.processes,
            RUNS,
            cores as u64 ^ 0xFFFF,
        );
        eprintln!(
            "[fig6] cores={cores}: mpi [{mpi_min:.4},{mpi_max:.4}] hybrid [{hyb_min:.4},{hyb_max:.4}]"
        );
        t.push(vec![
            cores.to_string(),
            format!("{mpi_min:.4}"),
            format!("{mpi_max:.4}"),
            format!("{hyb_min:.4}"),
            format!("{hyb_max:.4}"),
            (hyb_min < mpi_min).to_string(),
        ]);
    }
    t.emit();
}
