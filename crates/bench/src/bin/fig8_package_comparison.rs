//! Fig. 8: running times of all programs across the ZDock suite on one
//! 12-core node (a), and speedups w.r.t. Amber (b).
//!
//! Expected shape: OCT_MPI / OCT_MPI+CILK fastest overall; Gromacs next
//! (max ~6.2x over Amber at 2,260 atoms, ~2.7x at 16,301); Amber beats
//! NAMD, Tinker and GBr⁶; OCT_MPI reaches ~11x over Amber at 16,301
//! atoms. OOM rows print `OOM`.

#![forbid(unsafe_code)]

use polaroct_baselines::{all_packages, PackageContext, PackageOutcome};
use polaroct_bench::{hybrid_cluster, mpi_cluster, std_config, suite, Table};
use polaroct_core::{
    run_oct_cilk, run_oct_hybrid, run_oct_mpi, ApproxParams, GbSystem, WorkDivision,
};
use polaroct_geom::fastmath::MathMode;

fn main() {
    let params = ApproxParams::default().with_math(MathMode::Approx);
    let cfg = std_config();
    let pkgs = all_packages();
    let ctx12 = PackageContext::new(mpi_cluster(12));

    let mut t = Table::new(
        "fig8a_package_times",
        &[
            "molecule",
            "atoms",
            "t_oct_mpi_s",
            "t_oct_hybrid_s",
            "t_oct_cilk_s",
            "t_gromacs_s",
            "t_namd_s",
            "t_amber_s",
            "t_tinker_s",
            "t_gbr6_s",
        ],
    );
    let mut s = Table::new(
        "fig8b_speedup_vs_amber",
        &[
            "molecule",
            "atoms",
            "oct_mpi",
            "oct_hybrid",
            "oct_cilk",
            "gromacs",
            "namd",
            "tinker",
            "gbr6",
        ],
    );

    for entry in suite() {
        let mol = entry.build();
        let sys = GbSystem::prepare(&mol, &params);
        let oct_mpi = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(12),
            WorkDivision::NodeNode,
        ).unwrap()
        .time;
        let oct_hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12)).unwrap().time;
        let oct_cilk = run_oct_cilk(&sys, &params, &cfg, 12).unwrap().time;

        // Package order from all_packages(): Gromacs, NAMD, Amber,
        // Tinker, GBr6.
        let times: Vec<Option<f64>> = pkgs
            .iter()
            .map(|p| match p.run(&mol, &ctx12) {
                PackageOutcome::Ok(r) => Some(r.time),
                PackageOutcome::OutOfMemory { .. } => None,
            })
            .collect();
        let cell = |o: &Option<f64>| o.map(|v| format!("{v:.4}")).unwrap_or("OOM".into());
        let amber = times[2];
        eprintln!(
            "[fig8] {} ({}): oct_mpi {:.4}s amber {} gromacs {}",
            entry.name,
            entry.n_atoms,
            oct_mpi,
            cell(&amber),
            cell(&times[0])
        );
        t.push(vec![
            entry.name.clone(),
            entry.n_atoms.to_string(),
            format!("{oct_mpi:.4}"),
            format!("{oct_hyb:.4}"),
            format!("{oct_cilk:.4}"),
            cell(&times[0]),
            cell(&times[1]),
            cell(&amber),
            cell(&times[3]),
            cell(&times[4]),
        ]);
        if let Some(a) = amber {
            let sp = |t: Option<f64>| t.map(|t| format!("{:.2}", a / t)).unwrap_or("OOM".into());
            s.push(vec![
                entry.name.clone(),
                entry.n_atoms.to_string(),
                format!("{:.2}", a / oct_mpi),
                format!("{:.2}", a / oct_hyb),
                format!("{:.2}", a / oct_cilk),
                sp(times[0]),
                sp(times[1]),
                sp(times[3]),
                sp(times[4]),
            ]);
        }
    }
    t.emit();
    s.emit();
}
