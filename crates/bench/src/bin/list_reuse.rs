//! Verlet-skin interaction-list reuse: how often can MD steps be served
//! by prebuilt octrees + interaction lists, and what does a served step
//! cost next to a full recursive rebuild?
//!
//! Two sweeps, both over `skin ∈ {0, 0.5, 1.0, 2.0}` Å:
//!
//! 1. **MD sweep** — [`polaroct_core::md::run_md`] on a restrained
//!    ligand; reports the engine's `lists_reused` / `lists_rebuilt`
//!    counters (the Verlet hit rate under real restrained dynamics) and
//!    the per-step wall time.
//! 2. **Trajectory replay** — a deterministic ballistic drift
//!    (~0.03 Å/step, so rebuild cadence scales with skin) evaluated by a
//!    persistent [`polaroct_core::lists::ListEngine`] per skin, against
//!    a baseline that rebuilds the system and runs the *recursive*
//!    traversals every step. The skin-0 engine must match the recursive
//!    baseline **bit-for-bit at every step** (that gate is blocking),
//!    and skins > 0 must rebuild strictly fewer times than there are
//!    steps while keeping the average step no slower than the recursive
//!    baseline (generous margin in quick mode — single-core CI hosts
//!    time noisily at smoke sizes; see EXPERIMENTS.md for the caveat).
//!
//! Emits `BENCH_lists.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table. `POLAROCT_QUICK=1` shrinks the
//! molecule and step counts so CI can run it as a blocking step.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, Table};
use polaroct_core::born::born_radii_octree;
use polaroct_core::epol::{epol_octree_raw, ChargeBins};
use polaroct_core::lists::ListEngine;
use polaroct_core::md::{run_md, MdParams};
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_geom::Vec3;
use polaroct_molecule::synth;
use std::io::Write;
use std::time::Instant;

const SKINS: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

struct MdRow {
    skin: f64,
    reused: u64,
    rebuilt: u64,
    wall: f64,
    ops_total: u64,
}

struct ReplayRow {
    skin: f64,
    reuses: u64,
    rebuilds: u64,
    wall: f64,
    ops_total: u64,
    bitwise_equal: bool,
}

fn main() {
    let quick = quick_mode();
    let md_atoms = if quick { 25 } else { 60 };
    let md_steps = if quick { 10 } else { 30 };
    let replay_atoms = if quick { 70 } else { 250 };
    let replay_steps = if quick { 10 } else { 40 };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let approx = ApproxParams::default();

    // ---- Sweep 1: real restrained MD through the list engine.
    eprintln!("[list_reuse] MD sweep: {md_atoms}-atom ligand, {md_steps} steps");
    let md_mol = synth::ligand("listmd", md_atoms, 11);
    let mut md_rows: Vec<MdRow> = Vec::new();
    for &skin in &SKINS {
        let t = Instant::now();
        let report = run_md(&md_mol, &approx, &MdParams { skin, ..Default::default() }, md_steps);
        let wall = t.elapsed().as_secs_f64();
        eprintln!(
            "[list_reuse] md skin={skin}: reused {} rebuilt {} ({}/step)",
            report.lists_reused,
            report.lists_rebuilt,
            fmt_time(wall / md_steps as f64)
        );
        // Restrained ligand dynamics drifts ≪ skin/2 per step: any
        // positive skin must serve most steps from prebuilt lists.
        if skin > 0.0 {
            assert!(
                report.lists_rebuilt - 1 < md_steps as u64,
                "skin {skin} rebuilt on every MD step"
            );
            assert!(
                report.lists_reused > md_steps as u64 / 2,
                "skin {skin} reused only {} of {md_steps} MD steps",
                report.lists_reused
            );
        }
        md_rows.push(MdRow {
            skin,
            reused: report.lists_reused,
            rebuilt: report.lists_rebuilt,
            wall,
            ops_total: report.ops.total(),
        });
    }

    // ---- Sweep 2: trajectory replay vs the recursive baseline.
    eprintln!("[list_reuse] replay sweep: {replay_atoms}-atom protein, {replay_steps} steps");
    let mol = synth::protein("listreplay", replay_atoms, 0x115);
    // Ballistic drift: every atom translates ~0.03 Å/step in a fixed
    // direction (plus a small deterministic per-atom jitter), so the
    // displacement from any rebuild geometry grows linearly and the
    // rebuild cadence is proportional to the skin.
    let dir = Vec3::new(0.577350, 0.577350, 0.577350);
    let mut traj: Vec<Vec<Vec3>> = Vec::with_capacity(replay_steps);
    let mut pos = mol.positions.clone();
    for t in 0..replay_steps {
        for (i, p) in pos.iter_mut().enumerate() {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(t as u64 * 0x2545F4914F6CDD1D);
            let jitter = ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.004;
            *p += dir * (0.03 + jitter);
        }
        traj.push(pos.clone());
    }

    // Recursive baseline: full system rebuild + recursive traversals at
    // every trajectory frame (what every step cost before lists).
    let mut work = mol.clone();
    let mut baseline_raw: Vec<f64> = Vec::with_capacity(replay_steps);
    let t = Instant::now();
    for frame in &traj {
        // PANIC-OK: every synthesized trajectory frame has exactly positions.len() entries.
        work.positions.copy_from_slice(frame);
        let sys = GbSystem::prepare(&work, &approx);
        let (born, _) = born_radii_octree(&sys, approx.eps_born, approx.math);
        let bins = ChargeBins::build(&sys, &born, approx.eps_epol);
        let (raw, _) = epol_octree_raw(&sys, &bins, &born, approx.eps_epol, approx.math);
        baseline_raw.push(raw);
    }
    let baseline_wall = t.elapsed().as_secs_f64();
    eprintln!(
        "[list_reuse] recursive baseline: {} total ({}/step)",
        fmt_time(baseline_wall),
        fmt_time(baseline_wall / replay_steps as f64)
    );

    let mut replay_rows: Vec<ReplayRow> = Vec::new();
    for &skin in &SKINS {
        let mut engine = ListEngine::new(&mol, &approx, skin);
        let mut reuses = 0u64;
        let mut rebuilds = 0u64;
        let mut ops_total = 0u64;
        let mut bitwise_equal = true;
        let t = Instant::now();
        for (step, frame) in traj.iter().enumerate() {
            let eval = engine.evaluate(frame);
            if eval.rebuilt {
                rebuilds += 1;
            } else {
                reuses += 1;
            }
            ops_total += eval.ops.total();
            if skin == 0.0 {
                // Blocking gate: the skin-0 engine rebuilds every frame
                // and must reproduce the recursive traversal bit-for-bit.
                assert!(
                    eval.raw.to_bits() == baseline_raw[step].to_bits(),
                    "skin-0 list engine diverged from recursion at step {step}: {} vs {}",
                    eval.raw,
                    baseline_raw[step]
                );
            } else {
                bitwise_equal = bitwise_equal && eval.raw.to_bits() == baseline_raw[step].to_bits();
            }
        }
        let wall = t.elapsed().as_secs_f64();
        if skin > 0.0 {
            assert!(
                rebuilds < replay_steps as u64,
                "skin {skin} rebuilt on every replay step"
            );
        }
        eprintln!(
            "[list_reuse] replay skin={skin}: {} rebuilds, {} reuses ({}/step)",
            rebuilds,
            reuses,
            fmt_time(wall / replay_steps as f64)
        );
        replay_rows.push(ReplayRow { skin, reuses, rebuilds, wall, ops_total, bitwise_equal });
    }

    // Timing gate: the cheapest skinned configuration must not lose to
    // rebuilding + recursing every step. Generous margin in quick mode
    // (tiny problem sizes time noisily on shared CI hosts).
    let mut best_skinned = f64::INFINITY;
    for r in replay_rows.iter().filter(|r| r.skin > 0.0) {
        best_skinned = best_skinned.min(r.wall);
    }
    let margin = if quick { 2.5 } else { 1.25 };
    assert!(
        best_skinned <= baseline_wall * margin,
        "best skinned replay {best_skinned:.6}s vs recursive baseline {baseline_wall:.6}s (margin {margin})"
    );

    // ---- TSV table.
    let mut t = Table::new(
        "list_reuse",
        &["mode", "skin_A", "steps", "reused", "rebuilt", "wall_s", "step_wall_s", "ops"],
    );
    println!("mode    skin   steps  reused  rebuilt  wall        per-step");
    for r in &md_rows {
        println!(
            "md      {:<5}  {:>5}  {:>6}  {:>7}  {:>10}  {:>10}",
            r.skin,
            md_steps,
            r.reused,
            r.rebuilt,
            fmt_time(r.wall),
            fmt_time(r.wall / md_steps as f64)
        );
        t.push(vec![
            "md".into(),
            format!("{}", r.skin),
            md_steps.to_string(),
            r.reused.to_string(),
            r.rebuilt.to_string(),
            format!("{:.6}", r.wall),
            format!("{:.6}", r.wall / md_steps as f64),
            r.ops_total.to_string(),
        ]);
    }
    for r in &replay_rows {
        println!(
            "replay  {:<5}  {:>5}  {:>6}  {:>7}  {:>10}  {:>10}",
            r.skin,
            replay_steps,
            r.reuses,
            r.rebuilds,
            fmt_time(r.wall),
            fmt_time(r.wall / replay_steps as f64)
        );
        t.push(vec![
            "replay".into(),
            format!("{}", r.skin),
            replay_steps.to_string(),
            r.reuses.to_string(),
            r.rebuilds.to_string(),
            format!("{:.6}", r.wall),
            format!("{:.6}", r.wall / replay_steps as f64),
            r.ops_total.to_string(),
        ]);
    }
    t.emit();

    // ---- BENCH_lists.json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"md\": {{\"atoms\": {md_atoms}, \"steps\": {md_steps}, \"skins\": [\n"
    ));
    for (i, r) in md_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"skin_A\": {}, \"lists_reused\": {}, \"lists_rebuilt\": {}, \
             \"hit_rate\": {:.4}, \"wall_s\": {:.6e}, \"step_wall_s\": {:.6e}, \"ops\": {}}}{}\n",
            r.skin,
            r.reused,
            r.rebuilt,
            r.reused as f64 / md_steps as f64,
            r.wall,
            r.wall / md_steps as f64,
            r.ops_total,
            if i + 1 == md_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"replay\": {{\"atoms\": {replay_atoms}, \"steps\": {replay_steps}, \
         \"drift_per_step_A\": 0.03,\n"
    ));
    json.push_str(&format!(
        "    \"recursive_baseline\": {{\"wall_s\": {:.6e}, \"step_wall_s\": {:.6e}}},\n",
        baseline_wall,
        baseline_wall / replay_steps as f64
    ));
    json.push_str("    \"skins\": [\n");
    for (i, r) in replay_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"skin_A\": {}, \"reuses\": {}, \"rebuilds\": {}, \"wall_s\": {:.6e}, \
             \"step_wall_s\": {:.6e}, \"speedup_vs_recursive\": {:.4}, \"ops\": {}, \
             \"bitwise_equal_to_recursive\": {}}}{}\n",
            r.skin,
            r.reuses,
            r.rebuilds,
            r.wall,
            r.wall / replay_steps as f64,
            baseline_wall / r.wall,
            r.ops_total,
            r.bitwise_equal,
            if i + 1 == replay_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_lists.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[list_reuse] wrote {}", path.display()),
        Err(e) => eprintln!("[list_reuse] could not write {}: {e}", path.display()),
    }
}
