//! Incremental ΔE_pol perturbation queries vs full list re-execution.
//!
//! A mutation/perturbation screen asks: move `k` atoms, what is the new
//! polarization energy? PR 5's list engine answers by re-running every
//! Phase-A chunk; `core::delta` answers by re-running only the chunks
//! whose entries read a moved atom (DESIGN.md §15) — with a result that
//! is bit-identical **by construction**. This bench measures what that
//! buys, and gates that it costs nothing in correctness:
//!
//! * k-sweep over `k ∈ {1, 4, 16, 64}` moved atoms per query, each
//!   query reverted before the next (screening mode: every query scored
//!   against the same base state).
//! * Baseline: a persistent [`ListEngine`] evaluating the identical
//!   perturbed frames — same scaffold, same Verlet skin, but all chunks
//!   re-executed every query.
//! * **Blocking bitwise gate**: every delta query must equal the
//!   baseline evaluation bit-for-bit (both modes, no margin — this is
//!   the engine's contract, not a statistic).
//! * **Blocking speedup gate** at `k ≤ 16`: the incremental query must
//!   beat full re-execution in full mode (generous margin in quick
//!   mode — single-core CI hosts time noisily at smoke sizes; see
//!   EXPERIMENTS.md).
//!
//! Emits `BENCH_delta.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table. `POLAROCT_QUICK=1` shrinks the
//! molecule and query counts so CI can run it as a blocking smoke step.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, Table};
use polaroct_core::delta::{DeltaEngine, Perturbation};
use polaroct_core::lists::ListEngine;
use polaroct_core::ApproxParams;
use polaroct_geom::Vec3;
use polaroct_molecule::synth;
use std::io::Write;
use std::time::Instant;

const KS: [usize; 4] = [1, 4, 16, 64];
const SKIN: f64 = 0.8;
/// Per-component move amplitude (Å): well inside `SKIN / 2`, so neither
/// engine ever crosses the rebuild boundary (queries revert to base).
const AMPLITUDE: f64 = 0.1;

struct Row {
    k: usize,
    delta_wall: f64,
    revert_wall: f64,
    full_wall: f64,
    redone_mean: f64,
    cached_mean: f64,
    total_chunks: usize,
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn main() {
    let quick = quick_mode();
    let atoms = if quick { 120 } else { 800 };
    let queries = if quick { 4 } else { 16 };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let approx = ApproxParams::default();

    eprintln!("[delta_scan] {atoms}-atom protein, {queries} queries per k, skin {SKIN} A");
    let mol = synth::protein("deltascan", atoms, 0xD51);
    let mut delta = DeltaEngine::new(&mol, &approx, SKIN);
    let mut full = ListEngine::new(&mol, &approx, SKIN);
    // Warm the baseline at the base geometry (first evaluate pays the
    // accumulator allocations; keep it out of the timed loops).
    let base_eval = full.evaluate(&mol.positions);
    assert_eq!(
        base_eval.raw.to_bits(),
        delta.raw().to_bits(),
        "engines disagree at the base geometry"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut rng = 0xD51u64;
    for &k in &KS {
        let k = k.min(atoms);
        let mut delta_wall = 0.0f64;
        let mut revert_wall = 0.0f64;
        let mut full_wall = 0.0f64;
        let mut redone = 0u64;
        let mut cached = 0u64;
        let mut total_chunks = 0usize;
        for q in 0..queries {
            // k distinct atoms, amplitude-bounded absolute moves.
            let mut p = Perturbation::default();
            let mut frame = mol.positions.clone();
            let mut picked = vec![false; atoms];
            let mut placed = 0usize;
            while placed < k {
                let atom = (mix(&mut rng) % atoms as u64) as usize;
                if picked[atom] {
                    continue;
                }
                picked[atom] = true;
                placed += 1;
                let d = Vec3::new(
                    unit(&mut rng) * AMPLITUDE,
                    unit(&mut rng) * AMPLITUDE,
                    unit(&mut rng) * AMPLITUDE,
                );
                let target = mol.positions[atom] + d;
                p = p.move_atom(atom, target);
                frame[atom] = target;
            }

            let t = Instant::now();
            let eval = delta.apply_perturbation(&p, None);
            delta_wall += t.elapsed().as_secs_f64();
            assert!(!eval.rebuilt, "k={k} query {q} crossed the skin boundary");
            redone += eval.chunks_redone as u64;
            cached += eval.chunks_cached as u64;
            total_chunks = eval.total_chunks;

            let t = Instant::now();
            let feval = full.evaluate(&frame);
            full_wall += t.elapsed().as_secs_f64();
            assert!(!feval.rebuilt, "baseline crossed the skin boundary");

            // Blocking bitwise gate: the incremental answer IS the full
            // answer, on every query, in both modes.
            assert_eq!(
                eval.raw.to_bits(),
                feval.raw.to_bits(),
                "k={k} query {q}: delta {} != full {}",
                eval.raw,
                feval.raw
            );
            assert_eq!(eval.energy_kcal.to_bits(), feval.energy_kcal.to_bits());

            let t = Instant::now();
            assert!(delta.revert(None), "nothing to revert");
            revert_wall += t.elapsed().as_secs_f64();
            let beval = full.evaluate(&mol.positions);
            assert_eq!(
                delta.raw().to_bits(),
                beval.raw.to_bits(),
                "k={k} query {q}: revert diverged from base"
            );
        }
        eprintln!(
            "[delta_scan] k={k}: delta {}/query (revert {}), full {}/query, redone {:.1}/{} chunks",
            fmt_time(delta_wall / queries as f64),
            fmt_time(revert_wall / queries as f64),
            fmt_time(full_wall / queries as f64),
            redone as f64 / queries as f64,
            total_chunks,
        );
        // Few moved atoms must leave cache hits on the table.
        if k <= 16 {
            assert!(
                redone < queries as u64 * total_chunks as u64,
                "k={k} redid every chunk of every query"
            );
        }
        rows.push(Row {
            k,
            delta_wall,
            revert_wall,
            full_wall,
            redone_mean: redone as f64 / queries as f64,
            cached_mean: cached as f64 / queries as f64,
            total_chunks,
        });
    }

    // Blocking speedup gate at k <= 16: the incremental query must beat
    // full re-execution (quick mode only smokes the machinery — tiny
    // sizes time noisily on shared single-core hosts, so the margin is
    // generous there).
    let margin = if quick { 2.5 } else { 1.0 };
    for r in rows.iter().filter(|r| r.k <= 16) {
        assert!(
            r.delta_wall <= r.full_wall * margin,
            "k={}: delta {:.6}s vs full {:.6}s (margin {margin})",
            r.k,
            r.delta_wall,
            r.full_wall
        );
    }

    // ---- TSV table.
    let mut t = Table::new(
        "delta_scan",
        &[
            "k", "queries", "delta_query_s", "revert_query_s", "full_query_s", "speedup",
            "chunks_redone_mean", "chunks_cached_mean", "total_chunks",
        ],
    );
    println!("k     delta/query  revert/query  full/query  speedup  redone/total");
    for r in &rows {
        let speedup = r.full_wall / r.delta_wall;
        println!(
            "{:<4}  {:>11}  {:>12}  {:>10}  {:>7.2}  {:>6.1}/{}",
            r.k,
            fmt_time(r.delta_wall / queries as f64),
            fmt_time(r.revert_wall / queries as f64),
            fmt_time(r.full_wall / queries as f64),
            speedup,
            r.redone_mean,
            r.total_chunks,
        );
        t.push(vec![
            r.k.to_string(),
            queries.to_string(),
            format!("{:.6e}", r.delta_wall / queries as f64),
            format!("{:.6e}", r.revert_wall / queries as f64),
            format!("{:.6e}", r.full_wall / queries as f64),
            format!("{:.4}", speedup),
            format!("{:.1}", r.redone_mean),
            format!("{:.1}", r.cached_mean),
            r.total_chunks.to_string(),
        ]);
    }
    t.emit();

    // ---- BENCH_delta.json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"atoms\": {atoms}, \"skin_A\": {SKIN}, \"amplitude_A\": {AMPLITUDE}, \
         \"queries_per_k\": {queries},\n"
    ));
    json.push_str("  \"ks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k\": {}, \"delta_query_s\": {:.6e}, \"revert_query_s\": {:.6e}, \
             \"full_query_s\": {:.6e}, \"speedup_vs_full\": {:.4}, \
             \"chunks_redone_mean\": {:.1}, \"chunks_cached_mean\": {:.1}, \
             \"total_chunks\": {}, \"bitwise_equal_to_full\": true}}{}\n",
            r.k,
            r.delta_wall / queries as f64,
            r.revert_wall / queries as f64,
            r.full_wall / queries as f64,
            r.full_wall / r.delta_wall,
            r.redone_mean,
            r.cached_mean,
            r.total_chunks,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_delta.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[delta_scan] wrote {}", path.display()),
        Err(e) => eprintln!("[delta_scan] could not write {}: {e}", path.display()),
    }
}
