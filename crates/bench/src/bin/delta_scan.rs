//! Incremental ΔE_pol perturbation queries vs full list re-execution,
//! entry-granular vs chunk-granular caching, and batched multi-query
//! throughput.
//!
//! A mutation/perturbation screen asks: move `k` atoms, what is the new
//! polarization energy? PR 5's list engine answers by re-running every
//! Phase-A chunk; `core::delta` answers by re-running only the work
//! whose operands read a moved atom — chunks under PR 9's protocol
//! (DESIGN.md §15), individual list *entries* under the default
//! entry-granular protocol (§16) — with a result that is bit-identical
//! **by construction**. This bench measures what each level buys, and
//! gates that it costs nothing in correctness:
//!
//! * k-sweep over `k ∈ {1, 4, 16, 64}` moved atoms per query, each
//!   query reverted before the next (screening mode: every query scored
//!   against the same base state). Three services per query: the
//!   entry-granular engine, a chunk-granular engine
//!   ([`Granularity::Chunk`] — the PR 9 baseline), and a persistent
//!   [`ListEngine`] re-executing all chunks.
//! * Batch sweep over `N ∈ {1, 16, 64, 256}` queries × `k ∈ {1, 4, 16}`
//!   moves: [`DeltaEngine::apply_batch`] scoring N independent queries
//!   against one cached base vs the sequential apply→revert loop.
//! * **Blocking bitwise gates** (both modes, no margin — this is the
//!   engine's contract, not a statistic): entry == chunk == full on
//!   every k-sweep query; every batch query == its sequential
//!   apply→revert twin.
//! * **Blocking speedup gates** in full mode: entry beats full at
//!   `k ≤ 16`, and entry beats the chunk-granular baseline ≥2× per
//!   query at `k ≤ 4` (the point of PR 10). Quick mode only smokes the
//!   machinery — single-core CI hosts time noisily at smoke sizes, so
//!   its margins are generous; see EXPERIMENTS.md.
//!
//! Emits `BENCH_delta.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV tables. `POLAROCT_QUICK=1` shrinks
//! the molecule, query and batch counts so CI can run it as a blocking
//! smoke step.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, Table};
use polaroct_core::delta::{DeltaEngine, DeltaParams, Granularity, Perturbation};
use polaroct_core::lists::ListEngine;
use polaroct_core::ApproxParams;
use polaroct_geom::Vec3;
use polaroct_molecule::{synth, Molecule};
use std::io::Write;
use std::time::Instant;

const KS: [usize; 4] = [1, 4, 16, 64];
const SKIN: f64 = 0.8;
/// Per-component move amplitude (Å): well inside `SKIN / 2`, so neither
/// engine ever crosses the rebuild boundary (queries revert to base).
const AMPLITUDE: f64 = 0.1;

struct Row {
    k: usize,
    delta_wall: f64,
    chunk_wall: f64,
    revert_wall: f64,
    full_wall: f64,
    redone_mean: f64,
    cached_mean: f64,
    total_chunks: usize,
    entries_redone_mean: f64,
    chunk_entries_redone_mean: f64,
    total_entries: usize,
}

struct BatchRow {
    n: usize,
    k: usize,
    batch_wall: f64,
    seq_wall: f64,
    entries_redone_mean: f64,
    total_entries: usize,
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// One k-move query over distinct atoms, plus the perturbed frame for
/// the full-engine baseline.
fn make_query(mol: &Molecule, k: usize, rng: &mut u64) -> (Perturbation, Vec<Vec3>) {
    let atoms = mol.positions.len();
    let mut p = Perturbation::default();
    let mut frame = mol.positions.clone();
    let mut picked = vec![false; atoms];
    let mut placed = 0usize;
    while placed < k {
        let atom = (mix(rng) % atoms as u64) as usize;
        if picked[atom] {
            continue;
        }
        picked[atom] = true;
        placed += 1;
        let d = Vec3::new(
            unit(rng) * AMPLITUDE,
            unit(rng) * AMPLITUDE,
            unit(rng) * AMPLITUDE,
        );
        let target = mol.positions[atom] + d;
        p = p.move_atom(atom, target);
        frame[atom] = target;
    }
    (p, frame)
}

fn main() {
    let quick = quick_mode();
    let atoms = if quick { 120 } else { 800 };
    let queries = if quick { 4 } else { 16 };
    let batch_ns: &[usize] = if quick { &[1, 8] } else { &[1, 16, 64, 256] };
    let batch_ks: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16] };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let approx = ApproxParams::default();

    eprintln!("[delta_scan] {atoms}-atom protein, {queries} queries per k, skin {SKIN} A");
    let mol = synth::protein("deltascan", atoms, 0xD51);
    let mut delta = DeltaEngine::new(&mol, &approx, SKIN);
    let mut chunkd = DeltaEngine::with_params(
        &mol,
        &approx,
        SKIN,
        DeltaParams {
            granularity: Granularity::Chunk,
            ..Default::default()
        },
    );
    assert_eq!(delta.effective_granularity(), Granularity::Entry);
    assert_eq!(chunkd.effective_granularity(), Granularity::Chunk);
    let mut full = ListEngine::new(&mol, &approx, SKIN);
    // Warm the baseline at the base geometry (first evaluate pays the
    // accumulator allocations; keep it out of the timed loops).
    let base_eval = full.evaluate(&mol.positions);
    assert_eq!(
        base_eval.raw.to_bits(),
        delta.raw().to_bits(),
        "engines disagree at the base geometry"
    );
    assert_eq!(base_eval.raw.to_bits(), chunkd.raw().to_bits());

    let mut rows: Vec<Row> = Vec::new();
    let mut rng = 0xD51u64;
    for &k in &KS {
        let k = k.min(atoms);
        let mut delta_wall = 0.0f64;
        let mut chunk_wall = 0.0f64;
        let mut revert_wall = 0.0f64;
        let mut full_wall = 0.0f64;
        let mut redone = 0u64;
        let mut cached = 0u64;
        let mut e_redone = 0u64;
        let mut ce_redone = 0u64;
        let mut total_chunks = 0usize;
        let mut total_entries = 0usize;
        for q in 0..queries {
            let (p, frame) = make_query(&mol, k, &mut rng);

            let t = Instant::now();
            let eval = delta.apply_perturbation(&p, None);
            delta_wall += t.elapsed().as_secs_f64();
            assert!(!eval.rebuilt, "k={k} query {q} crossed the skin boundary");
            redone += eval.chunks_redone as u64;
            cached += eval.chunks_cached as u64;
            e_redone += eval.entries_redone as u64;
            total_chunks = eval.total_chunks;
            total_entries = eval.total_entries;

            // Chunk-granular service of the same query (PR 9 baseline).
            let t = Instant::now();
            let ceval = chunkd.apply_perturbation(&p, None);
            chunk_wall += t.elapsed().as_secs_f64();
            ce_redone += ceval.entries_redone as u64;

            let t = Instant::now();
            let feval = full.evaluate(&frame);
            full_wall += t.elapsed().as_secs_f64();
            assert!(!feval.rebuilt, "baseline crossed the skin boundary");

            // Blocking bitwise gates: the incremental answer IS the full
            // answer, at either granularity, on every query, in both
            // modes.
            assert_eq!(
                eval.raw.to_bits(),
                feval.raw.to_bits(),
                "k={k} query {q}: delta {} != full {}",
                eval.raw,
                feval.raw
            );
            assert_eq!(eval.energy_kcal.to_bits(), feval.energy_kcal.to_bits());
            assert_eq!(
                ceval.raw.to_bits(),
                feval.raw.to_bits(),
                "k={k} query {q}: chunk-granular engine diverged"
            );
            assert_eq!(
                eval.chunks_redone, ceval.chunks_redone,
                "k={k} query {q}: chunk accounting must be granularity-invariant"
            );
            assert!(
                eval.entries_redone <= ceval.entries_redone,
                "k={k} query {q}: entry mode redid more entries than chunk mode"
            );

            let t = Instant::now();
            assert!(delta.revert(None), "nothing to revert");
            revert_wall += t.elapsed().as_secs_f64();
            assert!(chunkd.revert(None), "nothing to revert (chunk)");
            let beval = full.evaluate(&mol.positions);
            assert_eq!(
                delta.raw().to_bits(),
                beval.raw.to_bits(),
                "k={k} query {q}: revert diverged from base"
            );
            assert_eq!(chunkd.raw().to_bits(), beval.raw.to_bits());
        }
        eprintln!(
            "[delta_scan] k={k}: entry {}/query (revert {}), chunk {}/query, full {}/query, \
             redone {:.1}/{} chunks, {:.1} vs {:.1} of {} entries",
            fmt_time(delta_wall / queries as f64),
            fmt_time(revert_wall / queries as f64),
            fmt_time(chunk_wall / queries as f64),
            fmt_time(full_wall / queries as f64),
            redone as f64 / queries as f64,
            total_chunks,
            e_redone as f64 / queries as f64,
            ce_redone as f64 / queries as f64,
            total_entries,
        );
        // Few moved atoms must leave cache hits on the table.
        if k <= 16 {
            assert!(
                redone < queries as u64 * total_chunks as u64,
                "k={k} redid every chunk of every query"
            );
            assert!(
                e_redone < ce_redone,
                "k={k}: entry granularity redid no fewer entries ({e_redone} vs {ce_redone})"
            );
        }
        rows.push(Row {
            k,
            delta_wall,
            chunk_wall,
            revert_wall,
            full_wall,
            redone_mean: redone as f64 / queries as f64,
            cached_mean: cached as f64 / queries as f64,
            total_chunks,
            entries_redone_mean: e_redone as f64 / queries as f64,
            chunk_entries_redone_mean: ce_redone as f64 / queries as f64,
            total_entries,
        });
    }

    // Blocking speedup gates (quick mode only smokes the machinery —
    // tiny sizes time noisily on shared single-core hosts, so the
    // margins are generous there).
    let margin = if quick { 2.5 } else { 1.0 };
    for r in rows.iter().filter(|r| r.k <= 16) {
        assert!(
            r.delta_wall <= r.full_wall * margin,
            "k={}: delta {:.6}s vs full {:.6}s (margin {margin})",
            r.k,
            r.delta_wall,
            r.full_wall
        );
    }
    // The point of the entry-granular cache: >=2x per query over the
    // chunk-granular baseline at small k (full mode; quick only asserts
    // it is not a slowdown beyond noise).
    for r in rows.iter().filter(|r| r.k <= 4) {
        if quick {
            assert!(
                r.delta_wall <= r.chunk_wall * 2.5,
                "k={}: entry {:.6}s vs chunk {:.6}s (quick-margin 2.5)",
                r.k,
                r.delta_wall,
                r.chunk_wall
            );
        } else {
            assert!(
                r.delta_wall * 2.0 <= r.chunk_wall,
                "k={}: entry {:.6}s vs chunk {:.6}s — less than the 2x contract",
                r.k,
                r.delta_wall,
                r.chunk_wall
            );
        }
    }

    // ---- Batch sweep: N independent queries against one cached base,
    // batch overlay vs the sequential apply->revert loop.
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    for &bk in batch_ks {
        for &bn in batch_ns {
            let qs: Vec<Perturbation> = (0..bn)
                .map(|_| make_query(&mol, bk.min(atoms), &mut rng).0)
                .collect();

            let t = Instant::now();
            let seq: Vec<_> = qs
                .iter()
                .map(|q| {
                    let e = delta.apply_perturbation(q, None);
                    assert!(delta.revert(None));
                    e
                })
                .collect();
            let seq_wall = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let bat = delta.apply_batch(&qs, None);
            let batch_wall = t.elapsed().as_secs_f64();

            // Blocking per-query bitwise gate, both modes: the batch
            // overlay answers with the sequential loop's exact bits.
            let mut e_redone = 0u64;
            let mut total_entries = 0usize;
            for (qi, (s, b)) in seq.iter().zip(&bat).enumerate() {
                assert_eq!(
                    s.raw.to_bits(),
                    b.raw.to_bits(),
                    "N={bn} k={bk} query {qi}: batch diverged from sequential"
                );
                assert_eq!(s.energy_kcal.to_bits(), b.energy_kcal.to_bits());
                assert_eq!(s.entries_redone, b.entries_redone);
                e_redone += b.entries_redone as u64;
                total_entries = b.total_entries;
            }
            assert_eq!(
                delta.raw().to_bits(),
                base_eval.raw.to_bits(),
                "N={bn} k={bk}: batch mutated the base state"
            );
            eprintln!(
                "[delta_scan] batch N={bn} k={bk}: batch {}/query, sequential {}/query, \
                 {:.1}/{} entries redone",
                fmt_time(batch_wall / bn as f64),
                fmt_time(seq_wall / bn as f64),
                e_redone as f64 / bn as f64,
                total_entries,
            );
            batch_rows.push(BatchRow {
                n: bn,
                k: bk,
                batch_wall,
                seq_wall,
                entries_redone_mean: e_redone as f64 / bn as f64,
                total_entries,
            });
        }
    }

    // ---- TSV tables.
    let mut t = Table::new(
        "delta_scan",
        &[
            "k", "queries", "delta_query_s", "chunk_query_s", "revert_query_s", "full_query_s",
            "speedup", "entry_vs_chunk_speedup", "chunks_redone_mean", "chunks_cached_mean",
            "total_chunks", "entries_redone_mean", "chunk_entries_redone_mean", "total_entries",
        ],
    );
    println!("k     entry/query  chunk/query  full/query  vs_full  vs_chunk  redone/total");
    for r in &rows {
        let speedup = r.full_wall / r.delta_wall;
        let vs_chunk = r.chunk_wall / r.delta_wall;
        println!(
            "{:<4}  {:>11}  {:>11}  {:>10}  {:>7.2}  {:>8.2}  {:>6.1}/{}",
            r.k,
            fmt_time(r.delta_wall / queries as f64),
            fmt_time(r.chunk_wall / queries as f64),
            fmt_time(r.full_wall / queries as f64),
            speedup,
            vs_chunk,
            r.redone_mean,
            r.total_chunks,
        );
        t.push(vec![
            r.k.to_string(),
            queries.to_string(),
            format!("{:.6e}", r.delta_wall / queries as f64),
            format!("{:.6e}", r.chunk_wall / queries as f64),
            format!("{:.6e}", r.revert_wall / queries as f64),
            format!("{:.6e}", r.full_wall / queries as f64),
            format!("{:.4}", speedup),
            format!("{:.4}", vs_chunk),
            format!("{:.1}", r.redone_mean),
            format!("{:.1}", r.cached_mean),
            r.total_chunks.to_string(),
            format!("{:.1}", r.entries_redone_mean),
            format!("{:.1}", r.chunk_entries_redone_mean),
            r.total_entries.to_string(),
        ]);
    }
    t.emit();

    let mut bt = Table::new(
        "delta_batch",
        &[
            "batch_n", "k", "batch_query_s", "seq_query_s", "batch_speedup",
            "entries_redone_mean", "total_entries",
        ],
    );
    println!("N     k     batch/query  seq/query  speedup  entries/total");
    for r in &batch_rows {
        let speedup = r.seq_wall / r.batch_wall;
        println!(
            "{:<4}  {:<4}  {:>11}  {:>9}  {:>7.2}  {:>7.1}/{}",
            r.n,
            r.k,
            fmt_time(r.batch_wall / r.n as f64),
            fmt_time(r.seq_wall / r.n as f64),
            speedup,
            r.entries_redone_mean,
            r.total_entries,
        );
        bt.push(vec![
            r.n.to_string(),
            r.k.to_string(),
            format!("{:.6e}", r.batch_wall / r.n as f64),
            format!("{:.6e}", r.seq_wall / r.n as f64),
            format!("{:.4}", speedup),
            format!("{:.1}", r.entries_redone_mean),
            r.total_entries.to_string(),
        ]);
    }
    bt.emit();

    // ---- BENCH_delta.json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"atoms\": {atoms}, \"skin_A\": {SKIN}, \"amplitude_A\": {AMPLITUDE}, \
         \"queries_per_k\": {queries},\n"
    ));
    json.push_str("  \"ks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k\": {}, \"delta_query_s\": {:.6e}, \"chunk_query_s\": {:.6e}, \
             \"revert_query_s\": {:.6e}, \
             \"full_query_s\": {:.6e}, \"speedup_vs_full\": {:.4}, \
             \"entry_vs_chunk_speedup\": {:.4}, \
             \"chunks_redone_mean\": {:.1}, \"chunks_cached_mean\": {:.1}, \
             \"total_chunks\": {}, \"entries_redone_mean\": {:.1}, \
             \"chunk_entries_redone_mean\": {:.1}, \"total_entries\": {}, \
             \"bitwise_equal_to_full\": true}}{}\n",
            r.k,
            r.delta_wall / queries as f64,
            r.chunk_wall / queries as f64,
            r.revert_wall / queries as f64,
            r.full_wall / queries as f64,
            r.full_wall / r.delta_wall,
            r.chunk_wall / r.delta_wall,
            r.redone_mean,
            r.cached_mean,
            r.total_chunks,
            r.entries_redone_mean,
            r.chunk_entries_redone_mean,
            r.total_entries,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batches\": [\n");
    for (i, r) in batch_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_n\": {}, \"k\": {}, \"batch_query_s\": {:.6e}, \
             \"seq_query_s\": {:.6e}, \"batch_speedup\": {:.4}, \
             \"entries_redone_mean\": {:.1}, \"total_entries\": {}, \
             \"bitwise_equal_to_sequential\": true}}{}\n",
            r.n,
            r.k,
            r.batch_wall / r.n as f64,
            r.seq_wall / r.n as f64,
            r.seq_wall / r.batch_wall,
            r.entries_redone_mean,
            r.total_entries,
            if i + 1 == batch_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_delta.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[delta_scan] wrote {}", path.display()),
        Err(e) => eprintln!("[delta_scan] could not write {}: {e}", path.display()),
    }
}
