//! Ablation: practical (`θ = 1+ε`) vs conservative (`θ = (1+ε)^{1/6}`)
//! Born-radius acceptance criterion — the evidence behind DESIGN.md's
//! "Pseudocode errata we fix" §2.
//!
//! For each molecule: Born radii via the naive reference, the practical
//! MAC, and the conservative MAC; report worst-case radius error and the
//! near-field work of each. The conservative rule should be (slightly)
//! more accurate and vastly more expensive — if its op count matches the
//! naive count, the far field never fired, which is the paper-throughput
//! argument for defaulting to the practical rule.

#![forbid(unsafe_code)]

use polaroct_bench::{suite, Table};
use polaroct_core::born::{approx_integrals_custom_mac, push_integrals_to_atoms, BornAccumulators};
use polaroct_core::naive::born_radii_naive;
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_geom::fastmath::MathMode;

fn born_with_mac(sys: &GbSystem, mac: f64) -> (Vec<f64>, u64, u64) {
    let mut acc = BornAccumulators::zeros(sys);
    let mut near = 0u64;
    let mut far = 0u64;
    for &q in &sys.qtree.leaf_ids {
        let ops = approx_integrals_custom_mac(sys, q, mac, &mut acc);
        near += ops.born_near;
        far += ops.born_far;
    }
    let mut out = vec![0.0; sys.n_atoms()];
    push_integrals_to_atoms(sys, &acc, 0..sys.n_atoms(), MathMode::Exact, &mut out);
    (out, near, far)
}

fn main() {
    let params = ApproxParams::default();
    let mut t = Table::new(
        "ablation_mac",
        &[
            "molecule",
            "atoms",
            "practical_worst_err_pct",
            "conservative_worst_err_pct",
            "practical_near_ops",
            "conservative_near_ops",
            "naive_ops",
        ],
    );
    for entry in suite().into_iter().step_by(8) {
        let mol = entry.build();
        let sys = GbSystem::prepare(&mol, &params);
        let (reference, _) = born_radii_naive(&sys, MathMode::Exact);
        let naive_ops = (sys.n_atoms() * sys.n_qpoints()) as u64;

        let worst = |radii: &[f64]| -> f64 {
            reference
                .iter()
                .zip(radii)
                .map(|(r, a)| ((r - a) / r).abs() * 100.0)
                .fold(0.0f64, f64::max)
        };
        let (prac, prac_near, _) = born_with_mac(&sys, params.born_mac_multiplier());
        let (cons, cons_near, _) = born_with_mac(&sys, params.born_mac_multiplier_conservative());
        eprintln!(
            "[mac] {} ({}): practical err {:.4}% ({} near) vs conservative {:.4}% ({} near; naive {})",
            entry.name,
            entry.n_atoms,
            worst(&prac),
            prac_near,
            worst(&cons),
            cons_near,
            naive_ops
        );
        t.push(vec![
            entry.name.clone(),
            entry.n_atoms.to_string(),
            format!("{:.4}", worst(&prac)),
            format!("{:.4}", worst(&cons)),
            prac_near.to_string(),
            cons_near.to_string(),
            naive_ops.to_string(),
        ]);
    }
    t.emit();
}
