//! Octree construction scaling: serial builder vs the pool-parallel
//! builder at 1..N threads, over both octrees of a prepared system (the
//! atoms tree and the much larger q-points tree).
//!
//! Before any timing is reported, every parallel tree is checked
//! **byte-identical** to the serial one via `Octree::content_digest`
//! (the tentpole guarantee: parallel construction is a pure performance
//! knob). Each configuration runs `reps` times keeping the minimum wall
//! time.
//!
//! Emits `BENCH_build.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table. Smoke mode
//! (`POLAROCT_QUICK=1`) shrinks the cloud and sweeps {1, 2} threads so
//! CI can run it as a blocking step.
//!
//! Note: on a single-core host the parallel build cannot beat the
//! serial one — chunking/scatter overhead with no extra cores lands it
//! at ~1x or slightly below. See EXPERIMENTS.md "Octree build scaling"
//! for the caveat and the identity-check role this bench still plays
//! there.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, Table};
use polaroct_core::ApproxParams;
use polaroct_geom::Vec3;
use polaroct_molecule::synth;
use polaroct_octree::{build, BuildParams};
use polaroct_sched::WorkStealingPool;
use polaroct_surface::surface_quadrature;
use std::io::Write;
use std::time::Instant;

struct TreeCase {
    tree: &'static str,
    points: Vec<Vec3>,
    leaf_capacity: usize,
}

struct Row {
    tree: &'static str,
    points: usize,
    threads: usize, // 0 = serial builder
    wall: f64,
    digest: u64,
}

fn main() {
    let n = if quick_mode() { 3_000 } else { 40_000 };
    let reps = if quick_mode() { 1 } else { 3 };
    let threads: &[usize] = if quick_mode() { &[1, 2] } else { &[1, 2, 4, 8] };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    eprintln!("[octree_build_scaling] generating protein ({n} atoms) + surface...");
    let mol = synth::protein("buildbench", n, 0x0C7);
    let params = ApproxParams::default();
    let quad = surface_quadrature(&mol, params.surface);
    eprintln!(
        "[octree_build_scaling] {} atoms, {} q-points, {host_cores} host cores",
        mol.positions.len(),
        quad.positions.len()
    );

    let cases = [
        TreeCase { tree: "atoms", points: mol.positions.clone(), leaf_capacity: params.leaf_cap_atoms },
        TreeCase {
            tree: "qpoints",
            points: quad.positions.clone(),
            leaf_capacity: params.leaf_cap_qpoints,
        },
    ];

    let mut rows: Vec<Row> = Vec::new();
    for case in &cases {
        let serial_params =
            BuildParams { leaf_capacity: case.leaf_capacity, ..Default::default() };

        let mut wall = f64::INFINITY;
        let mut digest = 0u64;
        for _ in 0..reps {
            let t = Instant::now();
            let tree = build(&case.points, serial_params);
            wall = wall.min(t.elapsed().as_secs_f64());
            digest = tree.content_digest();
        }
        eprintln!(
            "[octree_build_scaling] {} serial: {} (digest {digest:016x})",
            case.tree,
            fmt_time(wall)
        );
        rows.push(Row { tree: case.tree, points: case.points.len(), threads: 0, wall, digest });

        for &t_count in threads {
            let pool = WorkStealingPool::new(t_count);
            let mut wall = f64::INFINITY;
            let mut digest = 0u64;
            for _ in 0..reps {
                let t = Instant::now();
                let tree =
                    build(&case.points, BuildParams { pool: Some(&pool), ..serial_params });
                wall = wall.min(t.elapsed().as_secs_f64());
                digest = tree.content_digest();
            }
            eprintln!(
                "[octree_build_scaling] {} threads={t_count}: {}",
                case.tree,
                fmt_time(wall)
            );
            rows.push(Row {
                tree: case.tree,
                points: case.points.len(),
                threads: t_count,
                wall,
                digest,
            });
        }
    }

    // Identity gate: refuse to report timings from a builder that does
    // not reproduce the serial tree bit-for-bit.
    for case in &cases {
        let serial = rows
            .iter()
            .find(|r| r.tree == case.tree && r.threads == 0)
            .expect("serial row exists");
        for r in rows.iter().filter(|r| r.tree == case.tree && r.threads > 0) {
            assert_eq!(
                r.digest, serial.digest,
                "{} tree at {} threads is not byte-identical to serial",
                r.tree, r.threads
            );
        }
    }

    let mut t = Table::new("octree_build_scaling", &["tree", "points", "builder", "wall_s", "speedup_vs_serial"]);
    println!("tree     points  builder   wall        speedup");
    for r in &rows {
        let serial_wall = rows
            .iter()
            .find(|s| s.tree == r.tree && s.threads == 0)
            .map(|s| s.wall)
            .unwrap_or(r.wall);
        let builder =
            if r.threads == 0 { "serial".to_string() } else { format!("par@{}", r.threads) };
        let speedup = serial_wall / r.wall;
        println!("{:<8} {:>6}  {:<8} {:>10}  {:>6.2}", r.tree, r.points, builder, fmt_time(r.wall), speedup);
        t.push(vec![
            r.tree.to_string(),
            r.points.to_string(),
            builder,
            format!("{:.6}", r.wall),
            format!("{speedup:.3}"),
        ]);
    }
    t.emit();

    // BENCH_build.json — machine-readable record of the sweep.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    json.push_str("  \"trees\": [\n");
    for (ci, case) in cases.iter().enumerate() {
        let serial = rows
            .iter()
            .find(|r| r.tree == case.tree && r.threads == 0)
            .expect("serial row exists");
        json.push_str(&format!(
            "    {{\"tree\": \"{}\", \"points\": {}, \"leaf_capacity\": {}, \
             \"serial_wall_s\": {:.6e}, \"content_digest\": \"{:016x}\", \"parallel\": [\n",
            case.tree, serial.points, case.leaf_capacity, serial.wall, serial.digest
        ));
        let par: Vec<&Row> =
            rows.iter().filter(|r| r.tree == case.tree && r.threads > 0).collect();
        for (i, r) in par.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"threads\": {}, \"wall_s\": {:.6e}, \"speedup_vs_serial\": {:.4}, \
                 \"identical_to_serial\": true}}{}\n",
                r.threads,
                r.wall,
                serial.wall / r.wall,
                if i + 1 == par.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if ci + 1 == cases.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_build.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[octree_build_scaling] wrote {}", path.display()),
        Err(e) => eprintln!("[octree_build_scaling] could not write {}: {e}", path.display()),
    }
}
