//! Digest `$POLAROCT_OUT` (default `results/`) into a paper-vs-measured
//! claim table — the source for EXPERIMENTS.md's measured columns.
//!
//! Reads the TSVs the figure binaries emit; missing files are reported as
//! `pending`, not errors, so the summary can run on partial result sets.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn main() {
    let dir = std::env::var("POLAROCT_OUT").unwrap_or_else(|_| "results".into());
    let dir = PathBuf::from(dir);
    println!("# claim\tpaper\tmeasured\tverdict");
    for (claim, paper, check) in claims() {
        match check(&dir) {
            Some((measured, ok)) => println!(
                "{claim}\t{paper}\t{measured}\t{}",
                if ok { "SHAPE-OK" } else { "DEVIATES" }
            ),
            None => println!("{claim}\t{paper}\tpending\t-"),
        }
    }
}

type Check = fn(&Path) -> Option<(String, bool)>;

fn claims() -> Vec<(&'static str, &'static str, Check)> {
    vec![
        (
            "fig5: speedup at 144 vs 12 cores",
            "time keeps falling through 144 cores",
            check_fig5,
        ),
        (
            "fig6: hybrid min beats MPI min only at high core counts",
            "crossover near 180 cores",
            check_fig6,
        ),
        (
            "fig7: OCT_CILK fastest only for small molecules",
            "crossover ~2500 atoms",
            check_fig7,
        ),
        (
            "fig8b: OCT_MPI speedup over Amber at largest molecule",
            "~11x at 16,301 atoms",
            check_fig8,
        ),
        (
            "fig9: Tinker energy ≈ 70% of naive; OOM >12k (Tinker) / >13k (GBr6)",
            "0.70; OOM observed",
            check_fig9,
        ),
        (
            "fig10: error grows and time falls with ε",
            "monotone-ish tradeoff",
            check_fig10,
        ),
        (
            "fig11: OCT_MPI speedup vs Amber on CMV (12 cores)",
            "~520x",
            check_fig11,
        ),
        ("mem: 12x1 vs 2x6 per-node memory ratio", "5.86x", check_mem),
        (
            "workdiv: node-node error constant in P, atom-based varies",
            "constant vs varying",
            check_workdiv,
        ),
        ("approx-math: mean speedup", "1.42x", check_approx_math),
    ]
}

/// Load a TSV as header + string rows.
fn load(dir: &Path, name: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(dir.join(format!("{name}.tsv"))).ok()?;
    let mut lines = text.lines();
    let header: Vec<String> = lines.next()?.split('\t').map(String::from).collect();
    let rows = lines
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.split('\t').map(String::from).collect())
        .collect();
    Some((header, rows))
}

fn col(header: &[String], name: &str) -> Option<usize> {
    header.iter().position(|h| h == name)
}

fn f(row: &[String], idx: usize) -> Option<f64> {
    row.get(idx)?.parse().ok()
}

fn check_fig5(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig5_scalability_speedup")?;
    let sp = col(&h, "speedup_mpi_vs_12")?;
    let last = f(rows.last()?, sp)?;
    Some((format!("{last:.1}x at 144 cores"), last > 4.0))
}

fn check_fig6(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig6_scalability_minmax")?;
    let cores_i = col(&h, "cores")?;
    let wins_i = col(&h, "hybrid_min_wins")?;
    // First core count at which the hybrid's min wins and stays winning.
    let mut crossover = None;
    for r in rows.iter().rev() {
        if r[wins_i] == "true" {
            crossover = Some(r[cores_i].clone());
        } else {
            break;
        }
    }
    match crossover {
        Some(c) => {
            let c_num: f64 = c.parse().unwrap_or(0.0);
            Some((format!("hybrid min wins from {c} cores"), c_num > 12.0))
        }
        None => Some(("hybrid min never wins".into(), false)),
    }
}

fn check_fig7(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig7_octree_variants")?;
    let atoms_i = col(&h, "atoms")?;
    let cilk_i = col(&h, "t_oct_cilk_s")?;
    let mpi_i = col(&h, "t_oct_mpi_s")?;
    let mut largest_cilk_win = 0u64;
    let mut cilk_wins_small = false;
    for r in &rows {
        let atoms: u64 = r[atoms_i].parse().ok()?;
        let cilk = f(r, cilk_i)?;
        let mpi = f(r, mpi_i)?;
        if cilk < mpi {
            largest_cilk_win = largest_cilk_win.max(atoms);
            if atoms < 1000 {
                cilk_wins_small = true;
            }
        }
    }
    Some((
        format!("OCT_CILK last wins at {largest_cilk_win} atoms"),
        cilk_wins_small && largest_cilk_win < 20_000,
    ))
}

fn check_fig8(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig8b_speedup_vs_amber")?;
    let sp_i = col(&h, "oct_mpi")?;
    let last = rows.last()?;
    let sp: f64 = f(last, sp_i)?;
    Some((
        format!("{sp:.1}x at {} atoms", last[1]),
        (3.0..60.0).contains(&sp),
    ))
}

fn check_fig9(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig9_energy_values")?;
    let ratio_i = col(&h, "tinker_over_naive")?;
    let mut ratios = Vec::new();
    let mut saw_oom = false;
    for r in &rows {
        match r[ratio_i].parse::<f64>() {
            Ok(v) => ratios.push(v),
            Err(_) => saw_oom = true,
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    Some((
        format!("Tinker/naive mean {mean:.2}; OOM rows: {saw_oom}"),
        (0.55..0.85).contains(&mean) && saw_oom,
    ))
}

fn check_fig10(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig10_epsilon_sweep")?;
    let std_i = col(&h, "err_std_pct")?;
    let t_i = col(&h, "mean_time_s")?;
    let first_std = f(rows.first()?, std_i)?;
    let last_std = f(rows.last()?, std_i)?;
    let first_t = f(rows.first()?, t_i)?;
    let last_t = f(rows.last()?, t_i)?;
    Some((
        format!("err spread {first_std:.4}%→{last_std:.4}%, time {first_t:.3}s→{last_t:.3}s"),
        last_std > first_std && last_t < first_t,
    ))
}

fn check_fig11(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "fig11_cmv_table")?;
    let prog_i = col(&h, "program")?;
    let sp_i = col(&h, "speedup_vs_amber_12")?;
    let row = rows.iter().find(|r| r[prog_i] == "OCT_MPI")?;
    let sp: f64 = f(row, sp_i)?;
    Some((format!("{sp:.0}x"), sp > 50.0))
}

fn check_mem(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "mem_replication")?;
    let ratio_i = col(&h, "ratio")?;
    let r = f(rows.first()?, ratio_i)?;
    Some((format!("{r:.2}x"), (5.0..7.0).contains(&r)))
}

fn check_workdiv(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "ablation_workdiv")?;
    let node_i = col(&h, "node_err_pct")?;
    let atom_i = col(&h, "atom_err_pct")?;
    let spread = |idx: usize| -> Option<f64> {
        let vals: Vec<f64> = rows.iter().filter_map(|r| f(r, idx)).collect();
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(max - min)
    };
    let node_spread = spread(node_i)?;
    let atom_spread = spread(atom_i)?;
    Some((
        format!("node spread {node_spread:.2e}%, atom spread {atom_spread:.2e}%"),
        node_spread < 1e-9 && atom_spread > node_spread,
    ))
}

fn check_approx_math(dir: &Path) -> Option<(String, bool)> {
    let (h, rows) = load(dir, "ablation_approx_math")?;
    let sp_i = col(&h, "speedup")?;
    let vals: Vec<f64> = rows.iter().filter_map(|r| f(r, sp_i)).collect();
    let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    Some((format!("{mean:.3}x"), (1.3..1.6).contains(&mean)))
}

/// Map-based variant kept for future claims that need cross-file joins.
#[allow(dead_code)]
fn index_rows(header: &[String], rows: &[Vec<String>]) -> Vec<HashMap<String, String>> {
    rows.iter()
        .map(|r| header.iter().cloned().zip(r.iter().cloned()).collect())
        .collect()
}
