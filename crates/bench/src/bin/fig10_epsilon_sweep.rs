//! Fig. 10: error in E_pol and running time vs the E_pol approximation
//! parameter.
//!
//! Protocol from §V.E: ε_Born fixed at 0.9; ε_Epol swept 0.1..0.9;
//! approximate math OFF; OCT_MPI+CILK over the whole suite; report
//! avg ± std of the % error w.r.t. naive, plus the mean running time.

#![forbid(unsafe_code)]

use polaroct_bench::{hybrid_cluster, std_config, suite, Table};
use polaroct_core::{
    energy_error_pct, run_naive, run_oct_hybrid, ApproxParams, ErrorStats, GbSystem,
};

fn main() {
    let cfg = std_config();
    let suite = suite();

    // Naive references once per molecule (ε-independent).
    eprintln!(
        "[fig10] computing naive references for {} molecules...",
        suite.len()
    );
    let mut prepared = Vec::new();
    for entry in &suite {
        let mol = entry.build();
        let sys = GbSystem::prepare(&mol, &ApproxParams::default());
        let naive = run_naive(&sys, &ApproxParams::default(), &cfg).unwrap();
        prepared.push((entry.name.clone(), sys, naive.energy_kcal));
    }

    let mut t = Table::new(
        "fig10_epsilon_sweep",
        &[
            "eps_epol",
            "err_mean_pct",
            "err_std_pct",
            "err_min_pct",
            "err_max_pct",
            "mean_time_s",
        ],
    );

    for k in 1..=9 {
        let eps = k as f64 / 10.0;
        let params = ApproxParams::default().with_eps(0.9, eps);
        let mut errors = Vec::with_capacity(prepared.len());
        let mut total_time = 0.0;
        for (name, sys, e_naive) in &prepared {
            let r = run_oct_hybrid(sys, &params, &cfg, &hybrid_cluster(12)).unwrap();
            errors.push(energy_error_pct(r.energy_kcal, *e_naive));
            total_time += r.time;
            let _ = name;
        }
        let stats = ErrorStats::of(&errors);
        eprintln!("[fig10] eps={eps:.1}: err {stats}");
        t.push(vec![
            format!("{eps:.1}"),
            format!("{:.4}", stats.mean),
            format!("{:.4}", stats.std),
            format!("{:.4}", stats.min),
            format!("{:.4}", stats.max),
            format!("{:.5}", total_time / prepared.len() as f64),
        ]);
    }
    t.emit();
}
