//! Fig. 9: GB energy values computed by every program across the suite.
//!
//! Expected shape: Amber, GBr⁶, Gromacs, NAMD and the octree variants
//! track the naive energy closely; Tinker lands around 70% of naive;
//! Tinker and GBr⁶ go OOM above ~12k and ~13k atoms respectively.

#![forbid(unsafe_code)]

use polaroct_baselines::{all_packages, PackageContext, PackageOutcome};
use polaroct_bench::{mpi_cluster, std_config, suite, Table};
use polaroct_core::{run_naive, run_oct_mpi, ApproxParams, GbSystem, WorkDivision};

fn main() {
    let params = ApproxParams::default();
    let cfg = std_config();
    let pkgs = all_packages();
    let ctx12 = PackageContext::new(mpi_cluster(12));

    let mut t = Table::new(
        "fig9_energy_values",
        &[
            "molecule",
            "atoms",
            "e_naive",
            "e_oct_mpi",
            "e_gromacs",
            "e_namd",
            "e_amber",
            "e_tinker",
            "e_gbr6",
            "tinker_over_naive",
        ],
    );

    for entry in suite() {
        let mol = entry.build();
        let sys = GbSystem::prepare(&mol, &params);
        let naive = run_naive(&sys, &params, &cfg).unwrap();
        let oct = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(12),
            WorkDivision::NodeNode,
        ).unwrap();
        let energies: Vec<Option<f64>> = pkgs
            .iter()
            .map(|p| match p.run(&mol, &ctx12) {
                PackageOutcome::Ok(r) => Some(r.energy_kcal),
                PackageOutcome::OutOfMemory { .. } => None,
            })
            .collect();
        let cell = |o: &Option<f64>| o.map(|v| format!("{v:.2}")).unwrap_or("OOM".into());
        let tinker_ratio = energies[3]
            .map(|e| format!("{:.3}", e / naive.energy_kcal))
            .unwrap_or("OOM".into());
        eprintln!(
            "[fig9] {} ({}): naive {:.1} oct {:.1} tinker/naive {}",
            entry.name, entry.n_atoms, naive.energy_kcal, oct.energy_kcal, tinker_ratio
        );
        t.push(vec![
            entry.name.clone(),
            entry.n_atoms.to_string(),
            format!("{:.2}", naive.energy_kcal),
            format!("{:.2}", oct.energy_kcal),
            cell(&energies[0]),
            cell(&energies[1]),
            cell(&energies[2]),
            cell(&energies[3]),
            cell(&energies[4]),
            tinker_ratio,
        ]);
    }
    t.emit();
}
