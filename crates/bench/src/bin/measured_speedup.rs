//! Measured vs modeled parallel speedup for the real-thread driver.
//!
//! Sweeps `run_oct_threads` over threads ∈ {1, 2, 4, 8} on a ≥10k-atom
//! synthetic protein and prints the *measured* wall-clock speedup (from
//! `RunReport::wall_seconds`) next to the fork-join model's prediction
//! (from `RunReport::time`) — the simulator's Table II numbers are
//! finally falsifiable against real host threads.
//!
//! Emits `BENCH_parallel.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table. Each configuration runs
//! `reps` times and keeps the minimum wall time to suppress scheduler
//! noise; energies are checked bit-identical across thread counts
//! (deterministic block reduction) before anything is reported.
//!
//! Note: on a single-core host the measured speedup saturates at ~1x
//! regardless of thread count — the modeled column then shows what the
//! fork-join analysis predicts for a machine that actually has the
//! cores. See EXPERIMENTS.md "Measured parallel speedup".

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, std_config, Table};
use polaroct_core::{run_oct_threads, ApproxParams, GbSystem};
use polaroct_molecule::synth;
use std::io::Write;

fn main() {
    let n = if quick_mode() { 2_000 } else { 12_000 };
    let reps = if quick_mode() { 1 } else { 3 };
    eprintln!("[measured_speedup] generating protein ({n} atoms)...");
    let mol = synth::protein("bench", n, 0xBEEF);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    eprintln!(
        "[measured_speedup] system ready: {} atoms, {} q-points, {} host cores",
        sys.n_atoms(),
        sys.n_qpoints(),
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let cfg = std_config();

    let mut t = Table::new(
        "measured_speedup",
        &[
            "threads",
            "wall_s",
            "modeled_s",
            "speedup_measured",
            "speedup_modeled",
        ],
    );

    struct Row {
        threads: usize,
        wall: f64,
        modeled: f64,
        energy: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let mut wall = f64::INFINITY;
        let mut modeled = 0.0;
        let mut energy = 0.0;
        for _ in 0..reps {
            let r = run_oct_threads(&sys, &params, &cfg, threads).unwrap();
            wall = wall.min(r.wall_seconds);
            modeled = r.time;
            energy = r.energy_kcal;
        }
        eprintln!(
            "[measured_speedup] threads={threads}: wall {} | modeled {}",
            fmt_time(wall),
            fmt_time(modeled)
        );
        rows.push(Row {
            threads,
            wall,
            modeled,
            energy,
        });
    }

    // Determinism gate: the block reduction makes energies bit-identical
    // across widths; refuse to report numbers from a broken build.
    for r in &rows[1..] {
        assert_eq!(
            r.energy.to_bits(),
            rows[0].energy.to_bits(),
            "energy not reproducible across thread counts"
        );
    }

    let base_wall = rows[0].wall;
    let base_model = rows[0].modeled;
    println!("threads  measured speedup  modeled speedup");
    for r in &rows {
        let sm = base_wall / r.wall;
        let sp = base_model / r.modeled;
        println!("{:>7}  {:>16.2}  {:>15.2}", r.threads, sm, sp);
        t.push(vec![
            r.threads.to_string(),
            format!("{:.6}", r.wall),
            format!("{:.6}", r.modeled),
            format!("{:.3}", sm),
            format!("{:.3}", sp),
        ]);
    }
    t.emit();

    // BENCH_parallel.json — machine-readable record of the sweep.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"atoms\": {},\n", sys.n_atoms()));
    json.push_str(&format!("  \"qpoints\": {},\n", sys.n_qpoints()));
    json.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    ));
    json.push_str(&format!("  \"energy_kcal\": {:.12e},\n", rows[0].energy));
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s\": {:.6e}, \"modeled_s\": {:.6e}, \
             \"speedup_measured\": {:.4}, \"speedup_modeled\": {:.4}}}{}\n",
            r.threads,
            r.wall,
            r.modeled,
            base_wall / r.wall,
            base_model / r.modeled,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_parallel.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[measured_speedup] wrote {}", path.display()),
        Err(e) => eprintln!("[measured_speedup] could not write {}: {e}", path.display()),
    }
}
