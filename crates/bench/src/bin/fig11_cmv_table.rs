//! Fig. 11 (table): scalability on the Cucumber Mosaic Virus shell.
//!
//! Paper values: Amber 39 min (12 cores) / 3.3 min (144); OCT_MPI 4.5 s /
//! 0.46 s (speedups 520 / 430 over Amber); OCT_MPI+CILK 4.8 s / 0.61 s
//! (488 / 325); OCT_CILK 12.5 s (12 cores only; 187x); octree energies
//! within 1% of naive, Amber at 2.2%.
//!
//! The naive O(M²) reference is infeasible at 509,640 atoms on one core,
//! so the %-difference column is computed on a scaled CMV (60k atoms by
//! default; the approximation error is size-stable because it is governed
//! by ε, which the test suite verifies). Times at full size are measured
//! for every program.

#![forbid(unsafe_code)]

use polaroct_baselines::{GbPackage, PackageContext, PackageOutcome};
use polaroct_bench::{cmv_atoms, fmt_time, hybrid_cluster, mpi_cluster, std_config, Table};
use polaroct_core::{
    energy_error_pct, run_naive, run_oct_cilk, run_oct_hybrid, run_oct_mpi, ApproxParams, GbSystem,
    WorkDivision,
};
use polaroct_geom::fastmath::MathMode;
use polaroct_molecule::synth;

fn main() {
    let n = cmv_atoms();
    let params = ApproxParams::default().with_math(MathMode::Approx);
    let cfg = std_config();

    eprintln!("[fig11] generating CMV-scale capsid ({n} atoms)...");
    let mol = synth::capsid("CMV-shell", n, 0xC3F);
    let sys = GbSystem::prepare(&mol, &params);
    eprintln!(
        "[fig11] {} atoms, {} q-points",
        sys.n_atoms(),
        sys.n_qpoints()
    );

    // Full-size runs.
    let cilk12 = run_oct_cilk(&sys, &params, &cfg, 12).unwrap();
    let mpi12 = run_oct_mpi(
        &sys,
        &params,
        &cfg,
        &mpi_cluster(12),
        WorkDivision::NodeNode,
    ).unwrap();
    let mpi144 = run_oct_mpi(
        &sys,
        &params,
        &cfg,
        &mpi_cluster(144),
        WorkDivision::NodeNode,
    ).unwrap();
    let hyb12 = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12)).unwrap();
    let hyb144 = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(144)).unwrap();

    let amber = polaroct_baselines::amber::Amber::default();
    let amber12 = match amber.run(&mol, &PackageContext::new(mpi_cluster(12))) {
        PackageOutcome::Ok(r) => r,
        PackageOutcome::OutOfMemory { .. } => panic!("Amber should fit CMV"),
    };
    let amber144 = match amber.run(&mol, &PackageContext::new(mpi_cluster(144))) {
        PackageOutcome::Ok(r) => r,
        PackageOutcome::OutOfMemory { .. } => panic!("Amber should fit CMV"),
    };

    // Tinker / GBr6 must report OOM at CMV size (§V.F).
    let tinker_oom = matches!(
        polaroct_baselines::tinker::Tinker::default()
            .run(&mol, &PackageContext::new(mpi_cluster(12))),
        PackageOutcome::OutOfMemory { .. }
    );
    let gbr6_oom = matches!(
        polaroct_baselines::gbr6::GBr6.run(&mol, &PackageContext::new(mpi_cluster(1))),
        PackageOutcome::OutOfMemory { .. }
    );

    // Error vs naive at a tractable scale.
    eprintln!("[fig11] scaled naive reference for % difference...");
    let n_small = if polaroct_bench::quick_mode() {
        5_000
    } else {
        60_000
    };
    let small = synth::capsid("CMV-scaled", n_small, 0xC3F);
    let sys_small = GbSystem::prepare(&small, &params);
    let naive_small = run_naive(&sys_small, &params, &cfg).unwrap();
    let oct_small = run_oct_mpi(
        &sys_small,
        &params,
        &cfg,
        &mpi_cluster(12),
        WorkDivision::NodeNode,
    ).unwrap();
    let cilk_small = run_oct_cilk(&sys_small, &params, &cfg, 12).unwrap();
    let amber_small = match amber.run(&small, &PackageContext::new(mpi_cluster(12))) {
        PackageOutcome::Ok(r) => r,
        _ => panic!("Amber should fit scaled CMV"),
    };
    let err_oct = energy_error_pct(oct_small.energy_kcal, naive_small.energy_kcal);
    let err_cilk = energy_error_pct(cilk_small.energy_kcal, naive_small.energy_kcal);
    let err_amber = energy_error_pct(amber_small.energy_kcal, naive_small.energy_kcal);

    let mut t = Table::new(
        "fig11_cmv_table",
        &[
            "program",
            "t_12cores",
            "t_144cores",
            "speedup_vs_amber_12",
            "speedup_vs_amber_144",
            "energy_kcal_mol",
            "pct_diff_naive_scaled",
        ],
    );
    let row = |name: &str, t12: f64, t144: Option<f64>, e: f64, err: Option<f64>| -> Vec<String> {
        vec![
            name.into(),
            fmt_time(t12),
            t144.map(fmt_time).unwrap_or("X".into()),
            format!("{:.0}", amber12.time / t12),
            t144.map(|t| format!("{:.0}", amber144.time / t))
                .unwrap_or("X".into()),
            format!("{e:.3e}"),
            err.map(|e| format!("{e:+.2}%")).unwrap_or("-".into()),
        ]
    };
    t.push(row(
        "OCT_CILK",
        cilk12.time,
        None,
        cilk12.energy_kcal,
        Some(err_cilk),
    ));
    t.push(row(
        "Amber",
        amber12.time,
        Some(amber144.time),
        amber12.energy_kcal,
        Some(err_amber),
    ));
    t.push(row(
        "OCT_MPI+CILK",
        hyb12.time,
        Some(hyb144.time),
        hyb12.energy_kcal,
        Some(err_oct),
    ));
    t.push(row(
        "OCT_MPI",
        mpi12.time,
        Some(mpi144.time),
        mpi12.energy_kcal,
        Some(err_oct),
    ));
    t.emit();
    println!("# Tinker OOM at CMV: {tinker_oom} (paper: yes); GBr6 OOM: {gbr6_oom} (paper: yes)");
    println!(
        "# scaled-naive block: {n_small} atoms; naive E = {:.3e} kcal/mol",
        naive_small.energy_kcal
    );
}
