//! Fig. 7: the three octree implementations across the ZDock suite on one
//! 12-core node, sorted by OCT_CILK time.
//!
//! Expected shape (§V.C): OCT_CILK fastest below ~2,500 atoms (no MPI
//! overhead, dual-tree does less work); OCT_MPI pulls ahead for larger
//! molecules; OCT_MPI and OCT_MPI+CILK converge beyond ~7,500 atoms.
//! Approximation parameters 0.9/0.9, approximate math ON (as in §V.C).

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, hybrid_cluster, mpi_cluster, std_config, suite, Table};
use polaroct_core::{
    run_oct_cilk, run_oct_hybrid, run_oct_mpi, ApproxParams, GbSystem, WorkDivision,
};
use polaroct_geom::fastmath::MathMode;

struct Row {
    name: String,
    atoms: usize,
    cilk: f64,
    mpi: f64,
    hybrid: f64,
}

fn main() {
    let params = ApproxParams::default().with_math(MathMode::Approx);
    let cfg = std_config();
    let mut rows: Vec<Row> = Vec::new();

    for entry in suite() {
        let mol = entry.build();
        let sys = GbSystem::prepare(&mol, &params);
        let cilk = run_oct_cilk(&sys, &params, &cfg, 12).unwrap();
        let mpi = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(12),
            WorkDivision::NodeNode,
        ).unwrap();
        let hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(12)).unwrap();
        eprintln!(
            "[fig7] {} ({} atoms): CILK {} | MPI {} | MPI+CILK {}",
            entry.name,
            entry.n_atoms,
            fmt_time(cilk.time),
            fmt_time(mpi.time),
            fmt_time(hyb.time)
        );
        rows.push(Row {
            name: entry.name.clone(),
            atoms: entry.n_atoms,
            cilk: cilk.time,
            mpi: mpi.time,
            hybrid: hyb.time,
        });
    }

    // Paper sorts by OCT_CILK time.
    rows.sort_by(|a, b| a.cilk.total_cmp(&b.cilk));
    let mut t = Table::new(
        "fig7_octree_variants",
        &[
            "molecule",
            "atoms",
            "t_oct_cilk_s",
            "t_oct_mpi_s",
            "t_oct_hybrid_s",
        ],
    );
    for r in &rows {
        t.push(vec![
            r.name.clone(),
            r.atoms.to_string(),
            format!("{:.6}", r.cilk),
            format!("{:.6}", r.mpi),
            format!("{:.6}", r.hybrid),
        ]);
    }
    t.emit();

    // Observed crossovers for EXPERIMENTS.md.
    let cilk_wins = rows
        .iter()
        .filter(|r| r.cilk < r.mpi)
        .map(|r| r.atoms)
        .max()
        .unwrap_or(0);
    let mpi_wins = rows
        .iter()
        .filter(|r| r.mpi < r.hybrid)
        .map(|r| r.atoms)
        .max()
        .unwrap_or(0);
    println!("# crossover: largest molecule where OCT_CILK beats OCT_MPI = {cilk_wins} atoms (paper: ~2500)");
    println!("# crossover: largest molecule where OCT_MPI beats hybrid = {mpi_wins} atoms (paper: ~7500)");
}
