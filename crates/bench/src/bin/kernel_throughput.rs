//! Leaf-kernel throughput: what does one near-field interaction cost in
//! the r⁶ surface (Born) and STILL (E_pol) kernels, before and after
//! this repo's lane-batching + persistent-arena work?
//!
//! Two variants run the *same* near-entry workload (the interaction
//! lists' leaf×leaf blocks, positions refreshed per trajectory frame):
//!
//! * **gather_scalar** — the seed hot path: per-entry `QLeafSoa` /
//!   `AtomSoa` gather into scratch, then straight scalar loops (written
//!   out longhand here, independent of `core::soa`, so they also serve
//!   as the bitwise reference).
//! * **arena_lanes** — the current hot path: zero-copy views into the
//!   persistent Morton-ordered arenas, lane-batched kernels.
//!
//! Blocking gates (any mode, quick or full): the arena path must match
//! the gather+scalar path **bit-for-bit** — per-atom Born accumulators
//! and the raw E_pol sum at every frame — and the lane kernels must
//! match the scalar reference at every swept width and chunk size.
//! Timing (ns/interaction per kernel × MathMode × variant, and the
//! combined Approx-mode per-step walls with their speedup) is reported
//! in `BENCH_kernels.json`; far-field entries cost the same in both
//! variants and are excluded from both. `POLAROCT_QUICK=1` shrinks the
//! molecule and frame count so CI can run this as a blocking smoke.
//! Single-core-host caveat: see EXPERIMENTS.md.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, quick_mode, Table};
use polaroct_core::born::born_radii_octree;
use polaroct_core::epol::ChargeBins;
use polaroct_core::lists::{BornLists, EpolLists};
use polaroct_core::soa::{
    born_term_lanes, still_term_lanes, AtomSoa, AtomView, QLeafSoa, QView, StillScratch, CHUNK,
};
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_geom::fastmath::MathMode;
use polaroct_geom::Vec3;
use polaroct_molecule::synth;
use std::io::Write;
use std::time::Instant;

/// Seed-path scalar r⁶ surface kernel (pre-lane-batching loop body).
fn born_term_scalar(q: QView<'_>, xa: Vec3) -> f64 {
    let mut s = 0.0;
    for i in 0..q.len() {
        let dx = q.x[i] - xa.x;
        let dy = q.y[i] - xa.y;
        let dz = q.z[i] - xa.z;
        let inv2 = 1.0 / (dx * dx + dy * dy + dz * dz);
        s += (q.wnx[i] * dx + q.wny[i] * dy + q.wnz[i] * dz) * (inv2 * inv2 * inv2);
    }
    s
}

/// Seed-path scalar STILL kernel (per-element `exp`/`rsqrt` dispatch).
fn still_term_scalar(a: AtomView<'_>, xu: Vec3, ru: f64, math: MathMode) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        let dx = a.x[i] - xu.x;
        let dy = a.y[i] - xu.y;
        let dz = a.z[i] - xu.z;
        let d2 = dx * dx + dy * dy + dz * dz;
        let rr = ru * a.r[i];
        let e = math.exp(-d2 / (4.0 * rr));
        let f = d2 + rr * e;
        acc += a.q[i] * math.rsqrt(f);
    }
    acc
}

/// Born near sweep, seed style: gather each q leaf, scalar kernel.
fn born_sweep_gather(sys: &GbSystem, lists: &BornLists, acc: &mut [f64]) {
    let mut scratch = QLeafSoa::default();
    for e in lists.entries.iter().filter(|e| !e.far) {
        let a = sys.atoms.node(e.a);
        let q = sys.qtree.node(e.b);
        scratch.gather(sys, q.range());
        for ai in a.range() {
            acc[ai] += born_term_scalar(scratch.view(), sys.atoms.points[ai]);
        }
    }
}

/// Born near sweep, current style: arena views, block-form lane-batched
/// kernel (exactly the `BornLists::run_chunk` near path).
fn born_sweep_arena(sys: &GbSystem, lists: &BornLists, acc: &mut [f64]) {
    for e in lists.entries.iter().filter(|e| !e.far) {
        let a = sys.atoms.node(e.a);
        let q = sys.qtree.node(e.b);
        let qv = sys.q_arena.view(q.range());
        sys.born_block_terms(qv, a.range(), |ai, t| acc[ai] += t);
    }
}

/// STILL near sweep, seed style: gather each source leaf, scalar kernel.
fn still_sweep_gather(sys: &GbSystem, lists: &EpolLists, born: &[f64], math: MathMode) -> f64 {
    let mut scratch = AtomSoa::default();
    let mut raw = 0.0;
    for e in lists.entries.iter().filter(|e| !e.far) {
        let u = sys.atoms.node(e.a);
        let v = sys.atoms.node(e.b);
        scratch.gather(sys, born, v.range());
        for ui in u.range() {
            let term = still_term_scalar(scratch.view(), sys.atoms.points[ui], born[ui], math);
            raw += sys.charge[ui] * term;
        }
    }
    raw
}

/// STILL near sweep, current style: arena views, block-form lane-batched
/// kernel (the `EpolLists::run_chunk` near path). The `q·term` fold goes
/// straight into the global `raw` in source-atom order — the same
/// association as the gather sweep above, so the two stay bit-comparable.
fn still_sweep_arena(sys: &GbSystem, lists: &EpolLists, born: &[f64], math: MathMode) -> f64 {
    let mut raw = 0.0;
    let mut buf = [0.0f64; CHUNK];
    let mut scratch = StillScratch::default();
    for e in lists.entries.iter().filter(|e| !e.far) {
        let u = sys.atoms.node(e.a);
        let v = sys.atoms.node(e.b);
        let vv = sys.atom_arena.view(born, v.range());
        let ur = u.range();
        let mut base = ur.start;
        while base < ur.end {
            let m = CHUNK.min(ur.end - base);
            let uv = sys.atom_arena.view(born, base..base + m);
            uv.still_block(vv, math, &mut scratch, &mut buf[..m]);
            for (k, &t) in buf[..m].iter().enumerate() {
                raw += uv.q[k] * t;
            }
            base += m;
        }
    }
    raw
}

struct KernelRow {
    kernel: &'static str,
    mode: &'static str,
    variant: &'static str,
    interactions: u64,
    wall: f64,
}

impl KernelRow {
    fn ns_per_interaction(&self) -> f64 {
        self.wall * 1e9 / self.interactions as f64
    }
}

fn main() {
    let quick = quick_mode();
    let atoms = if quick { 60 } else { 200 };
    let frames = if quick { 4 } else { 10 };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let approx = ApproxParams::default();

    eprintln!("[kernel_throughput] {atoms}-atom protein, {frames} frames");
    let mol = synth::protein("kernels", atoms, 0x2c9);
    let mut sys = GbSystem::prepare(&mol, &approx);
    let born_lists = BornLists::build_single(&sys, approx.eps_born);
    // Radii + bins frozen at frame 0: identical still-kernel inputs for
    // both variants at every frame (only positions move).
    let (born, _) = born_radii_octree(&sys, approx.eps_born, approx.math);
    let bins = ChargeBins::build(&sys, &born, approx.eps_epol);
    let epol_lists = EpolLists::build_single(&sys, &bins, approx.eps_epol);

    let n = sys.n_atoms();
    let born_pairs: u64 = born_lists
        .entries
        .iter()
        .filter(|e| !e.far)
        .map(|e| (sys.atoms.node(e.a).len() * sys.qtree.node(e.b).len()) as u64)
        .sum();
    let still_pairs: u64 = epol_lists
        .entries
        .iter()
        .filter(|e| !e.far)
        .map(|e| (sys.atoms.node(e.a).len() * sys.atoms.node(e.b).len()) as u64)
        .sum();
    assert!(born_pairs > 0 && still_pairs > 0, "no near entries at {atoms} atoms");
    eprintln!(
        "[kernel_throughput] near workload/frame: {born_pairs} born pairs, {still_pairs} still pairs"
    );

    // ---- Blocking gate 1: lane widths × chunk sizes vs the scalar
    // reference, on real leaf data.
    let mut widths_checked = 0u64;
    for e in born_lists.entries.iter().filter(|e| !e.far).take(16) {
        let a = sys.atoms.node(e.a);
        let q = sys.qtree.node(e.b);
        let qv = sys.q_arena.view(q.range());
        for ai in a.range().take(2) {
            let xa = sys.atom_arena.position(ai);
            let want = born_term_scalar(qv, xa).to_bits();
            assert!(born_term_lanes::<1>(qv, xa).to_bits() == want, "born W=1 diverged");
            assert!(born_term_lanes::<2>(qv, xa).to_bits() == want, "born W=2 diverged");
            assert!(born_term_lanes::<4>(qv, xa).to_bits() == want, "born W=4 diverged");
            assert!(born_term_lanes::<8>(qv, xa).to_bits() == want, "born W=8 diverged");
            assert!(born_term_lanes::<16>(qv, xa).to_bits() == want, "born W=16 diverged");
            widths_checked += 5;
        }
    }
    for mode in [MathMode::Exact, MathMode::Approx] {
        for e in epol_lists.entries.iter().filter(|e| !e.far).take(16) {
            let u = sys.atoms.node(e.a);
            let v = sys.atoms.node(e.b);
            let vv = sys.atom_arena.view(&born, v.range());
            for ui in u.range().take(2) {
                let xu = sys.atom_arena.position(ui);
                let ru = born[ui];
                let want = still_term_scalar(vv, xu, ru, mode).to_bits();
                for chunk in [1usize, 7, 64] {
                    assert!(
                        still_term_lanes::<1>(vv, xu, ru, mode, chunk).to_bits() == want,
                        "still W=1 chunk={chunk} diverged"
                    );
                    assert!(
                        still_term_lanes::<2>(vv, xu, ru, mode, chunk).to_bits() == want,
                        "still W=2 chunk={chunk} diverged"
                    );
                    assert!(
                        still_term_lanes::<4>(vv, xu, ru, mode, chunk).to_bits() == want,
                        "still W=4 chunk={chunk} diverged"
                    );
                    assert!(
                        still_term_lanes::<8>(vv, xu, ru, mode, chunk).to_bits() == want,
                        "still W=8 chunk={chunk} diverged"
                    );
                    assert!(
                        still_term_lanes::<16>(vv, xu, ru, mode, chunk).to_bits() == want,
                        "still W=16 chunk={chunk} diverged"
                    );
                    widths_checked += 5;
                }
            }
        }
    }
    eprintln!("[kernel_throughput] lane/chunk bitwise gate: {widths_checked} kernel calls checked");

    // ---- Trajectory: deterministic ballistic drift inside a 1 Å skin
    // envelope equivalent (positions-only refresh each frame, the
    // list-reuse steady state).
    let dir = Vec3::new(0.577350, 0.577350, 0.577350);
    let mut traj: Vec<Vec<Vec3>> = Vec::with_capacity(frames);
    let mut pos = mol.positions.clone();
    for t in 0..frames {
        for (i, p) in pos.iter_mut().enumerate() {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(t as u64 * 0x2545F4914F6CDD1D);
            let jitter = ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.004;
            *p += dir * (0.02 + jitter);
        }
        traj.push(pos.clone());
    }

    // ---- Timed sweeps. Per repetition: replay the whole trajectory
    // (refresh positions, then run the near workload) through one
    // (kernel, mode, variant) combination; keep the **minimum** wall over
    // `reps` repetitions — the shared single-core bench host preempts
    // hard enough that sums/means are dominated by scheduler noise, and
    // the minimum is the standard robust throughput estimator. The
    // bitwise gate compares the two variants' accumulators on a separate
    // untimed replay first.
    let reps = if quick { 5 } else { 11 };
    for frame in &traj {
        sys.refresh_atom_positions(frame);
        let mut acc_g = vec![0.0f64; n];
        born_sweep_gather(&sys, &born_lists, &mut acc_g);
        let mut acc_a = vec![0.0f64; n];
        born_sweep_arena(&sys, &born_lists, &mut acc_a);
        // Blocking gate 2a: per-atom Born accumulators bit-equal.
        for (i, (g, a)) in acc_g.iter().zip(&acc_a).enumerate() {
            assert!(
                g.to_bits() == a.to_bits(),
                "born arena path diverged from gather+scalar at atom {i}: {g} vs {a}"
            );
        }
        for mode in [MathMode::Exact, MathMode::Approx] {
            let raw_g = still_sweep_gather(&sys, &epol_lists, &born, mode);
            let raw_a = still_sweep_arena(&sys, &epol_lists, &born, mode);
            // Blocking gate 2b: raw E_pol sum bit-equal.
            assert!(
                raw_g.to_bits() == raw_a.to_bits(),
                "still arena path diverged from gather+scalar ({mode:?}): {raw_g} vs {raw_a}"
            );
        }
    }
    eprintln!("[kernel_throughput] variant bitwise gate: {frames} frames checked");

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut per_step = [[0.0f64; 2]; 2]; // [mode][variant] combined walls
    let mut sink = 0.0f64;
    for (mi, mode) in [MathMode::Exact, MathMode::Approx].into_iter().enumerate() {
        let mode_name = if mi == 0 { "Exact" } else { "Approx" };
        let mut walls = [[f64::INFINITY; 2]; 2]; // [kernel][variant] min over reps
        for _ in 0..reps {
            let mut acc = vec![0.0f64; n];

            let t = Instant::now();
            for frame in &traj {
                sys.refresh_atom_positions(frame);
                born_sweep_gather(&sys, &born_lists, &mut acc);
            }
            walls[0][0] = walls[0][0].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for frame in &traj {
                sys.refresh_atom_positions(frame);
                born_sweep_arena(&sys, &born_lists, &mut acc);
            }
            walls[0][1] = walls[0][1].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for frame in &traj {
                sys.refresh_atom_positions(frame);
                sink += still_sweep_gather(&sys, &epol_lists, &born, mode);
            }
            walls[1][0] = walls[1][0].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for frame in &traj {
                sys.refresh_atom_positions(frame);
                sink += still_sweep_arena(&sys, &epol_lists, &born, mode);
            }
            walls[1][1] = walls[1][1].min(t.elapsed().as_secs_f64());

            sink += acc[0];
        }
        for (ki, kernel) in ["born_r6", "still"].into_iter().enumerate() {
            let pairs = if ki == 0 { born_pairs } else { still_pairs };
            for (vi, variant) in ["gather_scalar", "arena_lanes"].into_iter().enumerate() {
                rows.push(KernelRow {
                    kernel,
                    mode: mode_name,
                    variant,
                    interactions: pairs * frames as u64,
                    wall: walls[ki][vi],
                });
                per_step[mi][vi] += walls[ki][vi];
            }
        }
    }
    assert!(sink.is_finite(), "benchmark accumulator overflowed");

    // Per-step numbers: combined born+still near-kernel wall per frame.
    let seed_step = [per_step[0][0], per_step[1][0]].map(|w| w / frames as f64);
    let arena_step = [per_step[0][1], per_step[1][1]].map(|w| w / frames as f64);
    let speedup = [seed_step[0] / arena_step[0], seed_step[1] / arena_step[1]];
    eprintln!(
        "[kernel_throughput] per-step Exact: seed {} vs arena {} ({:.2}x)",
        fmt_time(seed_step[0]),
        fmt_time(arena_step[0]),
        speedup[0]
    );
    eprintln!(
        "[kernel_throughput] per-step Approx: seed {} vs arena {} ({:.2}x)",
        fmt_time(seed_step[1]),
        fmt_time(arena_step[1]),
        speedup[1]
    );
    // ---- TSV table.
    let mut t = Table::new(
        "kernel_throughput",
        &["kernel", "mode", "variant", "interactions", "wall_s", "ns_per_interaction"],
    );
    println!("kernel    mode    variant        interactions  wall        ns/inter");
    for r in &rows {
        println!(
            "{:<8}  {:<6}  {:<13}  {:>12}  {:>10}  {:>8.2}",
            r.kernel,
            r.mode,
            r.variant,
            r.interactions,
            fmt_time(r.wall),
            r.ns_per_interaction()
        );
        t.push(vec![
            r.kernel.into(),
            r.mode.into(),
            r.variant.into(),
            r.interactions.to_string(),
            format!("{:.6}", r.wall),
            format!("{:.3}", r.ns_per_interaction()),
        ]);
    }
    t.emit();

    // ---- BENCH_kernels.json.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"atoms\": {atoms},\n"));
    json.push_str(&format!("  \"frames\": {frames},\n"));
    json.push_str(&format!("  \"near_pairs_per_frame\": {{\"born_r6\": {born_pairs}, \"still\": {still_pairs}}},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"mode\": \"{}\", \"variant\": \"{}\", \
             \"interactions\": {}, \"wall_s\": {:.6e}, \"ns_per_interaction\": {:.4}}}{}\n",
            r.kernel,
            r.mode,
            r.variant,
            r.interactions,
            r.wall,
            r.ns_per_interaction(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"per_step\": [\n");
    for (mi, mode_name) in ["Exact", "Approx"].into_iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"seed_gather_scalar_step_s\": {:.6e}, \
             \"arena_lanes_step_s\": {:.6e}, \"speedup\": {:.4}}}{}\n",
            mode_name,
            seed_step[mi],
            arena_step[mi],
            speedup[mi],
            if mi == 1 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"bitwise_equal\": true,\n");
    json.push_str("  \"lane_widths_checked\": [1, 2, 4, 8, 16],\n");
    json.push_str("  \"chunk_sizes_checked\": [1, 7, 64]\n");
    json.push_str("}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_kernels.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[kernel_throughput] wrote {}", path.display()),
        Err(e) => eprintln!("[kernel_throughput] could not write {}: {e}", path.display()),
    }

    // Timing gate, checked after the report is emitted so a failing run
    // still leaves its numbers behind. Full mode only — quick-mode smoke
    // sizes time too noisily on shared single-core CI hosts for a
    // blocking ratio.
    if !quick {
        assert!(
            speedup[1] >= 2.0,
            "Approx per-step speedup {:.2}x below the 2x target (seed {:.6}s vs arena {:.6}s)",
            speedup[1],
            seed_step[1],
            arena_step[1]
        );
    }
}
