//! §IV.A ablation: node-based vs atom-based work division.
//!
//! Two paper claims to verify: (1) node-node division's energy is
//! invariant in P; atom-based division's energy drifts with P. (2)
//! "atom-node work division takes slightly more time than the purely node
//! based (node-node) work division."

#![forbid(unsafe_code)]

use polaroct_bench::{mpi_cluster, std_config, Table};
use polaroct_core::{
    energy_error_pct, run_naive, run_oct_mpi, ApproxParams, GbSystem, WorkDivision,
};
use polaroct_molecule::synth;

fn main() {
    let params = ApproxParams::default();
    let cfg = std_config();
    let mol = synth::protein("Z-mid", 4_000, 0xD1);
    let sys = GbSystem::prepare(&mol, &params);
    let naive = run_naive(&sys, &params, &cfg).unwrap();

    let mut t = Table::new(
        "ablation_workdiv",
        &[
            "P",
            "node_err_pct",
            "atom_err_pct",
            "node_time_s",
            "atom_time_s",
            "atom_over_node_time",
        ],
    );
    let mut node_errs = Vec::new();
    let mut atom_errs = Vec::new();
    for p in [1usize, 2, 4, 8, 16, 32] {
        let node = run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(p), WorkDivision::NodeNode).unwrap();
        let atom = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(p),
            WorkDivision::AtomBased,
        ).unwrap();
        let ne = energy_error_pct(node.energy_kcal, naive.energy_kcal);
        let ae = energy_error_pct(atom.energy_kcal, naive.energy_kcal);
        node_errs.push(ne);
        atom_errs.push(ae);
        t.push(vec![
            p.to_string(),
            format!("{ne:+.6}"),
            format!("{ae:+.6}"),
            format!("{:.5}", node.time),
            format!("{:.5}", atom.time),
            format!("{:.3}", atom.time / node.time),
        ]);
    }
    t.emit();

    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!(
        "# node-division error spread across P: {:.2e}% (paper: constant)",
        spread(&node_errs)
    );
    println!(
        "# atom-division error spread across P: {:.2e}% (paper: varies with P)",
        spread(&atom_errs)
    );
}
