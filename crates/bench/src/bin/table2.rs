//! Table II: packages, GB models, and parallelism types.

#![forbid(unsafe_code)]

use polaroct_baselines::all_packages;
use polaroct_bench::Table;

fn main() {
    let mut t = Table::new("table2_packages", &["package", "gb_model", "parallelism"]);
    for p in all_packages() {
        t.push(vec![
            p.name().into(),
            p.gb_model().into(),
            p.parallelism().into(),
        ]);
    }
    // Our implementations (Table II lower half).
    t.push(vec![
        "OCT_CILK".into(),
        "STILL".into(),
        "Shared (work stealing)".into(),
    ]);
    t.push(vec![
        "OCT_MPI".into(),
        "STILL".into(),
        "Distributed (simulated MPI)".into(),
    ]);
    t.push(vec![
        "OCT_MPI+CILK".into(),
        "STILL".into(),
        "Distributed (simulated MPI + work stealing)".into(),
    ]);
    t.push(vec!["Naive".into(), "STILL".into(), "Serial".into()]);
    t.emit();
}
