//! Table I: simulation environment.
//!
//! Prints the simulated Lonestar4 node spec (what all figure binaries
//! model) next to the actual build host, making the substitution explicit.

#![forbid(unsafe_code)]

use polaroct_bench::Table;
use polaroct_cluster::machine::MachineSpec;

fn main() {
    let m = MachineSpec::lonestar4();
    let mut t = Table::new("table1_environment", &["attribute", "simulated_value"]);
    t.push(vec![
        "Processors".into(),
        "3.33 GHz hexa-core Intel Westmere (simulated)".into(),
    ]);
    t.push(vec!["Cores/node".into(), m.cores_per_node().to_string()]);
    t.push(vec![
        "RAM size".into(),
        format!("{} GB", m.dram_per_node >> 30),
    ]);
    t.push(vec![
        "Cluster interconnect".into(),
        format!(
            "InfiniBand fat-tree (t_s={:.1}us, t_w={:.2}ns/B)",
            m.t_s_inter * 1e6,
            m.t_w_inter * 1e9
        ),
    ]);
    t.push(vec![
        "Cache".into(),
        format!(
            "{} MB L3 per socket, {} sockets",
            m.l3_per_socket >> 20,
            m.sockets
        ),
    ]);
    t.push(vec![
        "Parallelism platform".into(),
        "polaroct-sched (work stealing) + polaroct-cluster (simulated MPI)".into(),
    ]);
    t.push(vec![
        "Build host".into(),
        format!(
            "{} logical cores, {}",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            std::env::consts::ARCH
        ),
    ]);
    t.emit();
}
