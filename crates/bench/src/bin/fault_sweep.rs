//! Fault-injection sweep: recovery cost and fidelity vs fault rate,
//! on both cluster transports.
//!
//! Four measurements:
//!
//! 1. **Containment overhead** — wall-clock of the fault-free FT path
//!    (catch_unwind + try_map + checksummed collectives, nothing firing)
//!    against the plain driver entry point, on the real-thread driver.
//!    The acceptance bar is ≤2%.
//! 2. **Random-plan sweep** — `FaultPlan::random` at increasing rates;
//!    each plan must come back `Completed`/`Recovered` with an energy
//!    bit-identical to the fault-free run, and the simulated time shows
//!    what the retries cost.
//! 3. **Process-transport column** (unix only) — the *same* fault grid
//!    replayed on `run_oct_mpi_proc_ft`, where workers are real OS
//!    processes and `Kill` faults are literal `SIGKILL`s. A blocking
//!    equivalence gate asserts that every grid point classifies
//!    identically to the in-process run and lands on the same energy
//!    bits, plus one dedicated SIGKILL demo whose captured exit status
//!    must name signal 9.
//! 4. **Degraded recovery** — one killed rank regenerated far-field-only;
//!    reports the error estimate next to the actual error.
//!
//! Emits `BENCH_faults.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, mpi_cluster, quick_mode, std_config, Table};
use polaroct_cluster::fault::{phase, FaultPlan, FtPolicy};
use polaroct_core::drivers::{FtConfig, RecoveryMode, RunOutcome, RunReport};
use polaroct_core::{
    run_oct_mpi, run_oct_mpi_ft, run_oct_threads, run_oct_threads_ft, ApproxParams, GbSystem,
    WorkDivision,
};
use polaroct_molecule::synth;
use std::io::Write;
use std::time::Duration;

const RANKS: usize = 4;

struct Row {
    rate: f64,
    seed: u64,
    outcome: String,
    retries: u32,
    bit_identical: bool,
    time: f64,
}

/// One grid point replayed on the process transport, plus the verdict
/// of the equivalence gate against its in-process twin.
struct ProcRow {
    rate: f64,
    seed: u64,
    outcome: String,
    bit_identical: bool,
    time: f64,
}

/// Result of the dedicated real-SIGKILL demonstration.
struct SigkillDemo {
    outcome: String,
    exit_status: String,
    bit_identical: bool,
}

struct ProcColumn {
    rows: Vec<ProcRow>,
    sigkill: SigkillDemo,
}

/// Replay the sweep grid over real worker processes and gate the two
/// transports against each other. Panics (→ non-zero exit) on any
/// outcome or energy-bit mismatch: this is the blocking CI gate for
/// cross-transport equivalence.
#[cfg(unix)]
fn process_transport_column(
    mol: &polaroct_molecule::Molecule,
    clean: &RunReport,
    inproc_rows: &[Row],
) -> ProcColumn {
    use polaroct_core::run_oct_mpi_proc_ft;
    let params = ApproxParams::default();
    let cfg = std_config();
    // Worker processes contend for host cores instead of sharing one
    // address space, so rank skew is larger than in the thread fabric;
    // the timeout only bounds real waits and never enters the simulated
    // clock, so a generous value cannot change outcomes or energies.
    let policy = FtPolicy::with_timeout(Duration::from_secs(5));
    let mut rows = Vec::with_capacity(inproc_rows.len());
    for row in inproc_rows {
        let ftc = FtConfig {
            plan: FaultPlan::random(row.seed, RANKS, row.rate),
            policy,
            recovery: RecoveryMode::Reexecute,
        };
        let r = run_oct_mpi_proc_ft(mol, &params, &cfg, RANKS, WorkDivision::NodeNode, &ftc)
            .expect("process-transport re-execute recovery must survive any random plan");
        let outcome = format!("{:?}", r.outcome);
        let bit_identical = r.energy_kcal.to_bits() == clean.energy_kcal.to_bits();
        // Blocking equivalence gate: same plan → same classification and
        // the same energy bits on both transports.
        assert_eq!(
            outcome, row.outcome,
            "rate {} seed {}: transports classified differently",
            row.rate, row.seed
        );
        assert!(
            bit_identical,
            "rate {} seed {}: process-transport energy drifted",
            row.rate, row.seed
        );
        assert_eq!(
            r.time.to_bits(),
            row.time.to_bits(),
            "rate {} seed {}: simulated time diverged across transports",
            row.rate,
            row.seed
        );
        rows.push(ProcRow { rate: row.rate, seed: row.seed, outcome, bit_identical, time: r.time });
    }

    // Dedicated demo: a worker process killed by a real SIGKILL must be
    // recovered, its exit status captured, and the energy unchanged.
    let ftc = FtConfig {
        plan: FaultPlan::new(7).kill(1, phase::INTEGRALS),
        policy,
        recovery: RecoveryMode::Reexecute,
    };
    let r = run_oct_mpi_proc_ft(mol, &params, &cfg, RANKS, WorkDivision::NodeNode, &ftc)
        .expect("SIGKILL recovery must complete");
    assert!(
        matches!(r.outcome, RunOutcome::Recovered { .. }),
        "SIGKILL demo: expected Recovered, got {:?}",
        r.outcome
    );
    let exit_status = r
        .ft
        .exits
        .iter()
        .find(|(rank, _)| *rank == 1)
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    assert!(
        exit_status.contains("signal 9"),
        "SIGKILL demo: expected a signal-9 exit status for rank 1, got {:?}",
        r.ft.exits
    );
    let bit_identical = r.energy_kcal.to_bits() == clean.energy_kcal.to_bits();
    assert!(bit_identical, "SIGKILL demo: recovered energy drifted");
    eprintln!(
        "[fault_sweep] process transport: rank 1 {exit_status}; outcome {:?}; \
         energy bit-identical to in-process clean run",
        r.outcome
    );
    ProcColumn {
        rows,
        sigkill: SigkillDemo { outcome: format!("{:?}", r.outcome), exit_status, bit_identical },
    }
}

fn main() {
    // This binary re-execs itself as worker processes for the
    // process-transport column; route those invocations before any
    // bench logic runs.
    polaroct_core::maybe_worker();

    let n = if quick_mode() { 1_500 } else { 6_000 };
    let reps = if quick_mode() { 2 } else { 5 };
    eprintln!("[fault_sweep] generating protein ({n} atoms)...");
    let mol = synth::protein("faults", n, 0xFA17);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = std_config();
    let policy = FtPolicy::with_timeout(Duration::from_secs(2));

    // 1. Containment overhead on the real-thread driver: plain entry vs
    // explicit FT entry with an empty plan (min-of-reps on both sides).
    let threads = 4;
    let mut wall_plain = f64::INFINITY;
    let mut wall_ft = f64::INFINITY;
    for _ in 0..reps {
        wall_plain = wall_plain.min(run_oct_threads(&sys, &params, &cfg, threads).unwrap().wall_seconds);
        wall_ft = wall_ft
            .min(run_oct_threads_ft(&sys, &params, &cfg, threads, &FaultPlan::none()).unwrap().wall_seconds);
    }
    let overhead_pct = (wall_ft / wall_plain - 1.0) * 100.0;
    eprintln!(
        "[fault_sweep] containment: plain {} vs ft {} ({overhead_pct:+.2}%)",
        fmt_time(wall_plain),
        fmt_time(wall_ft)
    );

    // 2. Fault-free reference for the distributed sweep.
    let clean = run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode).unwrap();
    eprintln!(
        "[fault_sweep] clean run: E = {:.6e} kcal/mol, simulated {}",
        clean.energy_kcal,
        fmt_time(clean.time)
    );

    let mut t = Table::new(
        "fault_sweep",
        &["rate", "seed", "outcome", "retries", "bit_identical", "time_s", "time_overhead_pct"],
    );
    let mut rows: Vec<Row> = Vec::new();
    let seeds: &[u64] = if quick_mode() { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    for &rate in &[0.1f64, 0.25, 0.5] {
        for &seed in seeds {
            let ftc = FtConfig {
                plan: FaultPlan::random(seed, RANKS, rate),
                policy,
                recovery: RecoveryMode::Reexecute,
            };
            let r = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode, &ftc)
                .expect("re-execute recovery must survive any random plan");
            let retries = match r.outcome {
                RunOutcome::Recovered { n_retries } => n_retries,
                _ => 0,
            };
            let bit_identical = r.energy_kcal.to_bits() == clean.energy_kcal.to_bits();
            assert!(bit_identical, "rate {rate} seed {seed}: energy drifted");
            rows.push(Row {
                rate,
                seed,
                outcome: format!("{:?}", r.outcome),
                retries,
                bit_identical,
                time: r.time,
            });
        }
    }
    for r in &rows {
        t.push(vec![
            format!("{:.2}", r.rate),
            r.seed.to_string(),
            r.outcome.clone(),
            r.retries.to_string(),
            r.bit_identical.to_string(),
            format!("{:.6}", r.time),
            format!("{:.2}", (r.time / clean.time - 1.0) * 100.0),
        ]);
    }
    t.emit();

    // 3. Process-transport column: same grid, real worker processes,
    // real SIGKILLs, blocking equivalence gate against the rows above.
    #[cfg(unix)]
    let proc_col: Option<ProcColumn> = {
        eprintln!(
            "[fault_sweep] replaying the grid on the process transport ({} runs)...",
            rows.len()
        );
        Some(process_transport_column(&mol, &clean, &rows))
    };
    #[cfg(not(unix))]
    let proc_col: Option<ProcColumn> = None;

    match &proc_col {
        Some(pc) => {
            let mut pt = Table::new(
                "fault_sweep_process",
                &["rate", "seed", "outcome", "bit_identical", "time_s"],
            );
            for r in &pc.rows {
                pt.push(vec![
                    format!("{:.2}", r.rate),
                    r.seed.to_string(),
                    r.outcome.clone(),
                    r.bit_identical.to_string(),
                    format!("{:.6}", r.time),
                ]);
            }
            pt.emit();
        }
        None => eprintln!("[fault_sweep] process transport skipped (unix-only)"),
    }

    // 4. Degraded recovery: one killed rank, far-field-only regeneration.
    let ftc = FtConfig {
        plan: FaultPlan::new(99).kill(2, phase::INTEGRALS),
        policy,
        recovery: RecoveryMode::Degrade,
    };
    let deg = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode, &ftc)
        .expect("degraded recovery must complete");
    let (est_err, actual_err) = match deg.outcome {
        RunOutcome::Degraded { est_error_pct } => (
            est_error_pct,
            ((deg.energy_kcal - clean.energy_kcal) / clean.energy_kcal).abs() * 100.0,
        ),
        ref other => {
            eprintln!("[fault_sweep] warning: expected Degraded, got {other:?}");
            (0.0, 0.0)
        }
    };
    eprintln!("[fault_sweep] degraded: est {est_err:.2}% vs actual {actual_err:.4}%");

    // BENCH_faults.json — machine-readable record.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"atoms\": {},\n", sys.n_atoms()));
    json.push_str(&format!("  \"ranks\": {RANKS},\n"));
    json.push_str(&format!("  \"clean_energy_kcal\": {:.12e},\n", clean.energy_kcal));
    json.push_str(&format!("  \"clean_time_s\": {:.6e},\n", clean.time));
    json.push_str(&format!(
        "  \"containment\": {{\"threads\": {threads}, \"wall_plain_s\": {wall_plain:.6e}, \
         \"wall_ft_s\": {wall_ft:.6e}, \"overhead_pct\": {overhead_pct:.3}}},\n"
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rate\": {:.2}, \"seed\": {}, \"outcome\": \"{}\", \"retries\": {}, \
             \"bit_identical\": {}, \"time_s\": {:.6e}, \"time_overhead_pct\": {:.3}}}{}\n",
            r.rate,
            r.seed,
            r.outcome,
            r.retries,
            r.bit_identical,
            r.time,
            (r.time / clean.time - 1.0) * 100.0,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    match &proc_col {
        Some(pc) => {
            json.push_str("  \"process_sweep\": [\n");
            for (i, r) in pc.rows.iter().enumerate() {
                json.push_str(&format!(
                    "    {{\"rate\": {:.2}, \"seed\": {}, \"outcome\": \"{}\", \
                     \"bit_identical\": {}, \"time_s\": {:.6e}}}{}\n",
                    r.rate,
                    r.seed,
                    r.outcome,
                    r.bit_identical,
                    r.time,
                    if i + 1 == pc.rows.len() { "" } else { "," }
                ));
            }
            json.push_str("  ],\n");
            json.push_str(&format!(
                "  \"process_sigkill\": {{\"outcome\": \"{}\", \"exit_status\": \"{}\", \
                 \"bit_identical\": {}}},\n",
                pc.sigkill.outcome, pc.sigkill.exit_status, pc.sigkill.bit_identical
            ));
        }
        None => {
            json.push_str("  \"process_sweep\": null,\n");
            json.push_str("  \"process_sigkill\": null,\n");
        }
    }
    json.push_str(&format!(
        "  \"degraded\": {{\"est_error_pct\": {est_err:.4}, \"actual_error_pct\": {actual_err:.4}}}\n"
    ));
    json.push_str("}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_faults.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[fault_sweep] wrote {}", path.display()),
        Err(e) => eprintln!("[fault_sweep] could not write {}: {e}", path.display()),
    }
}
