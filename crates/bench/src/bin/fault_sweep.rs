//! Fault-injection sweep: recovery cost and fidelity vs fault rate.
//!
//! Three measurements, all on a 4-rank simulated OCT_MPI run:
//!
//! 1. **Containment overhead** — wall-clock of the fault-free FT path
//!    (catch_unwind + try_map + checksummed collectives, nothing firing)
//!    against the plain driver entry point, on the real-thread driver.
//!    The acceptance bar is ≤2%.
//! 2. **Random-plan sweep** — `FaultPlan::random` at increasing rates;
//!    each plan must come back `Completed`/`Recovered` with an energy
//!    bit-identical to the fault-free run, and the simulated time shows
//!    what the retries cost.
//! 3. **Degraded recovery** — one killed rank regenerated far-field-only;
//!    reports the error estimate next to the actual error.
//!
//! Emits `BENCH_faults.json` (to `$POLAROCT_OUT` if set, else
//! `results/`) plus the usual TSV table.

#![forbid(unsafe_code)]

use polaroct_bench::{fmt_time, mpi_cluster, quick_mode, std_config, Table};
use polaroct_cluster::fault::{phase, FaultPlan, FtPolicy};
use polaroct_core::drivers::{FtConfig, RecoveryMode, RunOutcome};
use polaroct_core::{
    run_oct_mpi, run_oct_mpi_ft, run_oct_threads, run_oct_threads_ft, ApproxParams, GbSystem,
    WorkDivision,
};
use polaroct_molecule::synth;
use std::io::Write;
use std::time::Duration;

const RANKS: usize = 4;

fn main() {
    let n = if quick_mode() { 1_500 } else { 6_000 };
    let reps = if quick_mode() { 2 } else { 5 };
    eprintln!("[fault_sweep] generating protein ({n} atoms)...");
    let mol = synth::protein("faults", n, 0xFA17);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = std_config();
    let policy = FtPolicy::with_timeout(Duration::from_secs(2));

    // 1. Containment overhead on the real-thread driver: plain entry vs
    // explicit FT entry with an empty plan (min-of-reps on both sides).
    let threads = 4;
    let mut wall_plain = f64::INFINITY;
    let mut wall_ft = f64::INFINITY;
    for _ in 0..reps {
        wall_plain = wall_plain.min(run_oct_threads(&sys, &params, &cfg, threads).unwrap().wall_seconds);
        wall_ft = wall_ft
            .min(run_oct_threads_ft(&sys, &params, &cfg, threads, &FaultPlan::none()).unwrap().wall_seconds);
    }
    let overhead_pct = (wall_ft / wall_plain - 1.0) * 100.0;
    eprintln!(
        "[fault_sweep] containment: plain {} vs ft {} ({overhead_pct:+.2}%)",
        fmt_time(wall_plain),
        fmt_time(wall_ft)
    );

    // 2. Fault-free reference for the distributed sweep.
    let clean = run_oct_mpi(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode).unwrap();
    eprintln!(
        "[fault_sweep] clean run: E = {:.6e} kcal/mol, simulated {}",
        clean.energy_kcal,
        fmt_time(clean.time)
    );

    let mut t = Table::new(
        "fault_sweep",
        &["rate", "seed", "outcome", "retries", "bit_identical", "time_s", "time_overhead_pct"],
    );
    struct Row {
        rate: f64,
        seed: u64,
        outcome: String,
        retries: u32,
        bit_identical: bool,
        time: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let seeds: &[u64] = if quick_mode() { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    for &rate in &[0.1f64, 0.25, 0.5] {
        for &seed in seeds {
            let ftc = FtConfig {
                plan: FaultPlan::random(seed, RANKS, rate),
                policy,
                recovery: RecoveryMode::Reexecute,
            };
            let r = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode, &ftc)
                .expect("re-execute recovery must survive any random plan");
            let retries = match r.outcome {
                RunOutcome::Recovered { n_retries } => n_retries,
                _ => 0,
            };
            let bit_identical = r.energy_kcal.to_bits() == clean.energy_kcal.to_bits();
            assert!(bit_identical, "rate {rate} seed {seed}: energy drifted");
            rows.push(Row {
                rate,
                seed,
                outcome: format!("{:?}", r.outcome),
                retries,
                bit_identical,
                time: r.time,
            });
        }
    }
    for r in &rows {
        t.push(vec![
            format!("{:.2}", r.rate),
            r.seed.to_string(),
            r.outcome.clone(),
            r.retries.to_string(),
            r.bit_identical.to_string(),
            format!("{:.6}", r.time),
            format!("{:.2}", (r.time / clean.time - 1.0) * 100.0),
        ]);
    }
    t.emit();

    // 3. Degraded recovery: one killed rank, far-field-only regeneration.
    let ftc = FtConfig {
        plan: FaultPlan::new(99).kill(2, phase::INTEGRALS),
        policy,
        recovery: RecoveryMode::Degrade,
    };
    let deg = run_oct_mpi_ft(&sys, &params, &cfg, &mpi_cluster(RANKS), WorkDivision::NodeNode, &ftc)
        .expect("degraded recovery must complete");
    let (est_err, actual_err) = match deg.outcome {
        RunOutcome::Degraded { est_error_pct } => (
            est_error_pct,
            ((deg.energy_kcal - clean.energy_kcal) / clean.energy_kcal).abs() * 100.0,
        ),
        ref other => {
            eprintln!("[fault_sweep] warning: expected Degraded, got {other:?}");
            (0.0, 0.0)
        }
    };
    eprintln!("[fault_sweep] degraded: est {est_err:.2}% vs actual {actual_err:.4}%");

    // BENCH_faults.json — machine-readable record.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"atoms\": {},\n", sys.n_atoms()));
    json.push_str(&format!("  \"ranks\": {RANKS},\n"));
    json.push_str(&format!("  \"clean_energy_kcal\": {:.12e},\n", clean.energy_kcal));
    json.push_str(&format!("  \"clean_time_s\": {:.6e},\n", clean.time));
    json.push_str(&format!(
        "  \"containment\": {{\"threads\": {threads}, \"wall_plain_s\": {wall_plain:.6e}, \
         \"wall_ft_s\": {wall_ft:.6e}, \"overhead_pct\": {overhead_pct:.3}}},\n"
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rate\": {:.2}, \"seed\": {}, \"outcome\": \"{}\", \"retries\": {}, \
             \"bit_identical\": {}, \"time_s\": {:.6e}, \"time_overhead_pct\": {:.3}}}{}\n",
            r.rate,
            r.seed,
            r.outcome,
            r.retries,
            r.bit_identical,
            r.time,
            (r.time / clean.time - 1.0) * 100.0,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"degraded\": {{\"est_error_pct\": {est_err:.4}, \"actual_error_pct\": {actual_err:.4}}}\n"
    ));
    json.push_str("}\n");
    let dir = std::env::var("POLAROCT_OUT").ok().filter(|d| !d.is_empty());
    let dir = dir.unwrap_or_else(|| "results".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("BENCH_faults.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[fault_sweep] wrote {}", path.display()),
        Err(e) => eprintln!("[fault_sweep] could not write {}: {e}", path.display()),
    }
}
