//! §V.E ablation: approximate math ON vs OFF.
//!
//! Paper: "Turning approximate math 'on' shifted the error by 4-5% and
//! decreased the running times by a factor of 1.42 on average." The error
//! shift in the paper couples with its float-precision fast paths; our
//! double-precision fast kernels shift energies by far less (documented in
//! EXPERIMENTS.md), while the 1.42x time factor is reproduced directly.

#![forbid(unsafe_code)]

use polaroct_bench::{hybrid_cluster, std_config, suite, Table};
use polaroct_core::{energy_error_pct, run_naive, run_oct_hybrid, ApproxParams, GbSystem};
use polaroct_geom::fastmath::MathMode;

fn main() {
    let cfg = std_config();
    let mut t = Table::new(
        "ablation_approx_math",
        &[
            "molecule",
            "atoms",
            "err_exact_pct",
            "err_approx_pct",
            "t_exact_s",
            "t_approx_s",
            "speedup",
        ],
    );
    let mut speedups = Vec::new();
    for entry in suite().into_iter().step_by(4) {
        let mol = entry.build();
        let base = ApproxParams::default();
        let sys = GbSystem::prepare(&mol, &base);
        let naive = run_naive(&sys, &base, &cfg).unwrap();
        let exact = run_oct_hybrid(&sys, &base, &cfg, &hybrid_cluster(12)).unwrap();
        let approx = run_oct_hybrid(
            &sys,
            &base.with_math(MathMode::Approx),
            &cfg,
            &hybrid_cluster(12),
        ).unwrap();
        let speedup = exact.time / approx.time;
        speedups.push(speedup);
        t.push(vec![
            entry.name.clone(),
            entry.n_atoms.to_string(),
            format!(
                "{:+.4}",
                energy_error_pct(exact.energy_kcal, naive.energy_kcal)
            ),
            format!(
                "{:+.4}",
                energy_error_pct(approx.energy_kcal, naive.energy_kcal)
            ),
            format!("{:.5}", exact.time),
            format!("{:.5}", approx.time),
            format!("{speedup:.3}"),
        ]);
    }
    t.emit();
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("# mean approximate-math speedup: {mean:.3} (paper: 1.42)");
}
