//! Fig. 5: speedup vs core count on the BTV-scale capsid.
//!
//! "Figure 5: Speedup w.r.t. running time on one node (12 cores)." —
//! OCT_MPI runs 12 ranks/node, OCT_MPI+CILK runs 2 ranks × 6 threads per
//! node; cores sweep 12..144.

#![forbid(unsafe_code)]

use polaroct_bench::{btv_atoms, fmt_time, hybrid_cluster, mpi_cluster, std_config, Table};
use polaroct_core::{run_oct_hybrid, run_oct_mpi, ApproxParams, GbSystem, WorkDivision};
use polaroct_molecule::synth;

fn main() {
    let n = btv_atoms();
    eprintln!("[fig5] generating BTV-scale capsid ({n} atoms)...");
    let mol = synth::capsid("BTV-scale", n, 0xB7B);
    let params = ApproxParams::default();
    eprintln!("[fig5] sampling surface + building octrees...");
    let sys = GbSystem::prepare(&mol, &params);
    eprintln!(
        "[fig5] system ready: {} atoms, {} q-points",
        sys.n_atoms(),
        sys.n_qpoints()
    );
    let cfg = std_config();

    let mut t = Table::new(
        "fig5_scalability_speedup",
        &[
            "cores",
            "t_oct_mpi_s",
            "t_oct_hybrid_s",
            "speedup_mpi_vs_12",
            "speedup_hybrid_vs_12",
        ],
    );

    let core_counts = [12usize, 24, 48, 72, 96, 120, 144];
    let mut base_mpi = 0.0;
    let mut base_hyb = 0.0;
    for &cores in &core_counts {
        let mpi = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &mpi_cluster(cores),
            WorkDivision::NodeNode,
        ).unwrap();
        let hyb = run_oct_hybrid(&sys, &params, &cfg, &hybrid_cluster(cores)).unwrap();
        if cores == 12 {
            base_mpi = mpi.time;
            base_hyb = hyb.time;
        }
        eprintln!(
            "[fig5] cores={cores}: OCT_MPI {} | OCT_MPI+CILK {}",
            fmt_time(mpi.time),
            fmt_time(hyb.time)
        );
        t.push(vec![
            cores.to_string(),
            format!("{:.4}", mpi.time),
            format!("{:.4}", hyb.time),
            format!("{:.2}", base_mpi / mpi.time),
            format!("{:.2}", base_hyb / hyb.time),
        ]);
    }
    t.emit();
}
