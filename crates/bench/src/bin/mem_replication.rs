//! §V.B memory experiment: per-node footprint of 12×1 pure MPI vs 2×6
//! hybrid on the BTV-scale capsid.
//!
//! Paper measurement: OCT_MPI (12 procs) 8.2 GB/node vs OCT_MPI+CILK
//! (2 procs × 6 threads) 1.4 GB/node — 5.86x, "this ratio continues to
//! hold as we increase the number of compute nodes."

#![forbid(unsafe_code)]

use polaroct_bench::{btv_atoms, hybrid_cluster, mpi_cluster, Table};
use polaroct_cluster::memory::MemoryModel;
use polaroct_core::{ApproxParams, GbSystem};
use polaroct_molecule::synth;

fn main() {
    let n = btv_atoms();
    eprintln!("[mem] generating BTV-scale capsid ({n} atoms)...");
    let mol = synth::capsid("BTV-scale", n, 0xB7B);
    let sys = GbSystem::prepare(&mol, &ApproxParams::default());
    let mm = MemoryModel::new(sys.memory_bytes());

    let mut t = Table::new(
        "mem_replication",
        &[
            "nodes",
            "cores",
            "mpi_gb_per_node",
            "hybrid_gb_per_node",
            "ratio",
        ],
    );
    let gb = |b: usize| b as f64 / (1u64 << 30) as f64;
    for nodes in [1usize, 2, 4, 8, 12] {
        let cores = nodes * 12;
        let mpi = mpi_cluster(cores);
        let hyb = hybrid_cluster(cores);
        let m = mm.bytes_per_node(&mpi);
        let h = mm.bytes_per_node(&hyb);
        t.push(vec![
            nodes.to_string(),
            cores.to_string(),
            format!("{:.2}", gb(m)),
            format!("{:.2}", gb(h)),
            format!("{:.2}", m as f64 / h as f64),
        ]);
    }
    t.emit();
    println!(
        "# one replica = {:.2} GB ({} atoms, {} q-points); paper ratio: 5.86x",
        gb(sys.memory_bytes()),
        sys.n_atoms(),
        sys.n_qpoints()
    );
}
