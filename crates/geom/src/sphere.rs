//! Enclosing spheres.
//!
//! The paper's acceptance criteria use, for every octree node `A`, "the
//! radius of the smallest ball that encloses all atom centers under A"
//! (`r_A` in Fig. 2/3). An exact smallest enclosing ball is unnecessary: any
//! sound upper bound preserves the error guarantee (a larger radius only
//! makes the far test more conservative). We provide:
//!
//! * [`BoundingSphere::centered_at_centroid`] — center at the geometric
//!   center (what the paper's pseudo-atoms use), radius = max distance.
//! * [`BoundingSphere::ritter`] — Ritter's two-pass approximation, a
//!   tighter bound used in tests to check the centroid variant is sound.

use crate::vec3::Vec3;

/// A center + radius pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingSphere {
    pub center: Vec3,
    pub radius: f64,
}

impl BoundingSphere {
    /// Sphere centered at the centroid of `points` with radius equal to the
    /// greatest distance from the centroid to any point.
    ///
    /// This matches the paper exactly: far-field approximations replace a
    /// node by a pseudo-particle **at the geometric center**, so the error
    /// analysis needs the radius measured from that same center.
    ///
    /// Returns a zero sphere at the origin for an empty slice.
    pub fn centered_at_centroid(points: &[Vec3]) -> Self {
        if points.is_empty() {
            return BoundingSphere {
                center: Vec3::ZERO,
                radius: 0.0,
            };
        }
        let mut c = Vec3::ZERO;
        for &p in points {
            c += p;
        }
        c = c / points.len() as f64;
        let mut r2: f64 = 0.0;
        for &p in points {
            r2 = r2.max(c.dist2(p));
        }
        BoundingSphere {
            center: c,
            radius: r2.sqrt(),
        }
    }

    /// Like [`Self::centered_at_centroid`] but with a *weighted* centroid
    /// (e.g. charge-weighted or quadrature-weight-weighted centers). Weights
    /// must be non-negative with positive sum; falls back to the unweighted
    /// centroid otherwise.
    pub fn weighted_centroid(points: &[Vec3], weights: &[f64]) -> Self {
        assert_eq!(points.len(), weights.len());
        let wsum: f64 = weights.iter().sum();
        if points.is_empty() || wsum <= 0.0 {
            return Self::centered_at_centroid(points);
        }
        let mut c = Vec3::ZERO;
        for (&p, &w) in points.iter().zip(weights) {
            c += p * w;
        }
        c = c / wsum;
        let mut r2: f64 = 0.0;
        for &p in points {
            r2 = r2.max(c.dist2(p));
        }
        BoundingSphere {
            center: c,
            radius: r2.sqrt(),
        }
    }

    /// Ritter's approximate minimum enclosing sphere (within ~5–20% of
    /// optimal). Not used on the hot path; serves as a tightness oracle.
    pub fn ritter(points: &[Vec3]) -> Self {
        if points.is_empty() {
            return BoundingSphere {
                center: Vec3::ZERO,
                radius: 0.0,
            };
        }
        // Pass 1: find a far pair (x -> furthest y -> furthest z).
        let x = points[0];
        let y = *points
            .iter()
            .max_by(|a, b| x.dist2(**a).total_cmp(&x.dist2(**b)))
            .unwrap();
        let z = *points
            .iter()
            .max_by(|a, b| y.dist2(**a).total_cmp(&y.dist2(**b)))
            .unwrap();
        let mut center = (y + z) * 0.5;
        let mut radius = y.dist(z) * 0.5;
        // Pass 2: grow to include stragglers.
        for &p in points {
            let d = center.dist(p);
            if d > radius {
                let new_r = (radius + d) * 0.5;
                // Shift center toward p so both old sphere and p fit.
                center = center + (p - center) * ((new_r - radius) / d);
                radius = new_r;
            }
        }
        // Guard against floating point: ensure all points truly inside.
        for &p in points {
            radius = radius.max(center.dist(p));
        }
        BoundingSphere { center, radius }
    }

    /// True when `p` lies inside or on the sphere (with slack `eps`).
    #[inline]
    pub fn contains(&self, p: Vec3, eps: f64) -> bool {
        self.center.dist2(p) <= (self.radius + eps) * (self.radius + eps)
    }

    /// Distance between the centers of two spheres.
    #[inline]
    pub fn center_dist(&self, o: &BoundingSphere) -> f64 {
        self.center.dist(o.center)
    }

    /// Surface-to-surface gap (negative when the spheres overlap).
    #[inline]
    pub fn gap(&self, o: &BoundingSphere) -> f64 {
        self.center_dist(o) - self.radius - o.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        // Tiny deterministic LCG; avoids a rand dependency in unit tests.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n)
            .map(|_| Vec3::new(next(), next(), next()) * 10.0)
            .collect()
    }

    #[test]
    fn centroid_sphere_contains_all_points() {
        let pts = cloud(200, 7);
        let s = BoundingSphere::centered_at_centroid(&pts);
        for &p in &pts {
            assert!(s.contains(p, 1e-9));
        }
    }

    #[test]
    fn ritter_contains_all_points_and_is_not_larger_than_diameter_bound() {
        let pts = cloud(300, 13);
        let s = BoundingSphere::ritter(&pts);
        let mut max_pair: f64 = 0.0;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                max_pair = max_pair.max(pts[i].dist(pts[j]));
            }
        }
        for &p in &pts {
            assert!(s.contains(p, 1e-9));
        }
        // Any enclosing sphere must have radius >= half the diameter, and
        // Ritter's should not exceed the full diameter.
        assert!(s.radius >= max_pair / 2.0 - 1e-9);
        assert!(s.radius <= max_pair + 1e-9);
    }

    #[test]
    fn single_point_sphere_is_degenerate() {
        let p = [Vec3::new(1.0, 2.0, 3.0)];
        let s = BoundingSphere::centered_at_centroid(&p);
        assert_eq!(s.center, p[0]);
        assert_eq!(s.radius, 0.0);
        let r = BoundingSphere::ritter(&p);
        assert_eq!(r.center, p[0]);
        assert_eq!(r.radius, 0.0);
    }

    #[test]
    fn empty_input_gives_zero_sphere() {
        let s = BoundingSphere::centered_at_centroid(&[]);
        assert_eq!(s.radius, 0.0);
    }

    #[test]
    fn weighted_centroid_respects_weights() {
        let pts = [Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)];
        let s = BoundingSphere::weighted_centroid(&pts, &[3.0, 1.0]);
        assert!((s.center.x - 2.5).abs() < 1e-12);
        // Radius must still cover the far point.
        assert!(s.contains(pts[1], 1e-12));
    }

    #[test]
    fn weighted_centroid_zero_weights_falls_back() {
        let pts = [Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let s = BoundingSphere::weighted_centroid(&pts, &[0.0, 0.0]);
        assert!((s.center.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_sign() {
        let a = BoundingSphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        let b = BoundingSphere {
            center: Vec3::new(5.0, 0.0, 0.0),
            radius: 1.0,
        };
        assert!((a.gap(&b) - 3.0).abs() < 1e-12);
        let c = BoundingSphere {
            center: Vec3::new(1.5, 0.0, 0.0),
            radius: 1.0,
        };
        assert!(a.gap(&c) < 0.0);
    }

    #[test]
    fn symmetric_cloud_centroid_is_origin() {
        let pts = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
        ];
        let s = BoundingSphere::centered_at_centroid(&pts);
        assert!(s.center.norm() < 1e-12);
        assert!((s.radius - 1.0).abs() < 1e-12);
    }
}
