//! Rigid-body transforms (proper rotations + translations).
//!
//! §IV.C of the paper motivates reusing a built octree across ligand poses:
//! "for drug-design and docking where we need to place the ligand at
//! thousands of different positions w.r.t. the receptor, we can move the
//! same octree to different positions or rotate it as needed by multiplying
//! with proper transformation matrices". [`Transform`] is that matrix; the
//! octree crate applies it to node centers/leaf points without rebuilding.

use crate::vec3::Vec3;

/// A 3x3 rotation matrix stored row-major. Constructors guarantee a proper
/// rotation (orthonormal, det = +1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rotation {
    pub rows: [Vec3; 3],
}

impl Rotation {
    pub const IDENTITY: Rotation = Rotation {
        rows: [Vec3::X, Vec3::Y, Vec3::Z],
    };

    /// Rotation by `angle` radians about the (normalized) `axis`
    /// (Rodrigues' formula).
    pub fn about_axis(axis: Vec3, angle: f64) -> Self {
        let u = axis.normalized();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (u.x, u.y, u.z);
        Rotation {
            rows: [
                Vec3::new(t * x * x + c, t * x * y - s * z, t * x * z + s * y),
                Vec3::new(t * x * y + s * z, t * y * y + c, t * y * z - s * x),
                Vec3::new(t * x * z - s * y, t * y * z + s * x, t * z * z + c),
            ],
        }
    }

    /// Euler ZYX rotation (yaw about z, then pitch about y, then roll
    /// about x) — handy for pose scans.
    pub fn from_euler_zyx(yaw: f64, pitch: f64, roll: f64) -> Self {
        Rotation::about_axis(Vec3::Z, yaw)
            * Rotation::about_axis(Vec3::Y, pitch)
            * Rotation::about_axis(Vec3::X, roll)
    }

    /// Apply to a vector.
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Transpose = inverse for rotations.
    pub fn transpose(&self) -> Rotation {
        let r = &self.rows;
        Rotation {
            rows: [
                Vec3::new(r[0].x, r[1].x, r[2].x),
                Vec3::new(r[0].y, r[1].y, r[2].y),
                Vec3::new(r[0].z, r[1].z, r[2].z),
            ],
        }
    }

    /// Determinant (should be +1 for proper rotations).
    pub fn det(&self) -> f64 {
        let r = &self.rows;
        r[0].dot(r[1].cross(r[2]))
    }
}

impl std::ops::Mul for Rotation {
    type Output = Rotation;
    fn mul(self, o: Rotation) -> Rotation {
        let ot = o.transpose();
        Rotation {
            rows: [
                Vec3::new(
                    self.rows[0].dot(ot.rows[0]),
                    self.rows[0].dot(ot.rows[1]),
                    self.rows[0].dot(ot.rows[2]),
                ),
                Vec3::new(
                    self.rows[1].dot(ot.rows[0]),
                    self.rows[1].dot(ot.rows[1]),
                    self.rows[1].dot(ot.rows[2]),
                ),
                Vec3::new(
                    self.rows[2].dot(ot.rows[0]),
                    self.rows[2].dot(ot.rows[1]),
                    self.rows[2].dot(ot.rows[2]),
                ),
            ],
        }
    }
}

/// A rigid transform `p -> R p + t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transform {
    pub rotation: Rotation,
    pub translation: Vec3,
}

impl Transform {
    pub const IDENTITY: Transform = Transform {
        rotation: Rotation::IDENTITY,
        translation: Vec3::ZERO,
    };

    pub fn translation(t: Vec3) -> Self {
        Transform {
            rotation: Rotation::IDENTITY,
            translation: t,
        }
    }

    pub fn rotation(r: Rotation) -> Self {
        Transform {
            rotation: r,
            translation: Vec3::ZERO,
        }
    }

    /// Rotation about `pivot` followed by translation `t`.
    pub fn about_pivot(r: Rotation, pivot: Vec3, t: Vec3) -> Self {
        // R(p - pivot) + pivot + t  ==  Rp + (pivot - R pivot + t)
        Transform {
            rotation: r,
            translation: pivot - r.apply(pivot) + t,
        }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply_point(&self, p: Vec3) -> Vec3 {
        self.rotation.apply(p) + self.translation
    }

    /// Apply to a direction (rotation only — normals, for example).
    #[inline]
    pub fn apply_dir(&self, d: Vec3) -> Vec3 {
        self.rotation.apply(d)
    }

    /// Composition: `(self ∘ o)(p) = self(o(p))`.
    pub fn compose(&self, o: &Transform) -> Transform {
        Transform {
            rotation: self.rotation * o.rotation,
            translation: self.rotation.apply(o.translation) + self.translation,
        }
    }

    /// Inverse transform.
    pub fn inverse(&self) -> Transform {
        let rt = self.rotation.transpose();
        Transform {
            rotation: rt,
            translation: -rt.apply(self.translation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_rel;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_eq(a: Vec3, b: Vec3, tol: f64) {
        assert!((a - b).norm() < tol, "{a:?} != {b:?}");
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = Rotation::about_axis(Vec3::Z, FRAC_PI_2);
        assert_vec_eq(r.apply(Vec3::X), Vec3::Y, 1e-12);
        assert_vec_eq(r.apply(Vec3::Y), -Vec3::X, 1e-12);
    }

    #[test]
    fn rotation_preserves_length_and_det_is_one() {
        let r = Rotation::about_axis(Vec3::new(1.0, 2.0, -0.5), 1.234);
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert!(approx_eq_rel(r.apply(v).norm(), v.norm(), 1e-12));
        assert!(approx_eq_rel(r.det(), 1.0, 1e-12));
    }

    #[test]
    fn transpose_is_inverse() {
        let r = Rotation::about_axis(Vec3::new(0.2, -1.0, 0.7), 2.5);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_eq(r.transpose().apply(r.apply(v)), v, 1e-12);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = Rotation::about_axis(Vec3::X, 0.7);
        let b = Rotation::about_axis(Vec3::Z, -1.1);
        let v = Vec3::new(0.5, -2.0, 1.5);
        assert_vec_eq((a * b).apply(v), a.apply(b.apply(v)), 1e-12);
    }

    #[test]
    fn euler_zyx_identity_when_all_zero() {
        let r = Rotation::from_euler_zyx(0.0, 0.0, 0.0);
        assert_vec_eq(
            r.apply(Vec3::new(1.0, 2.0, 3.0)),
            Vec3::new(1.0, 2.0, 3.0),
            1e-15,
        );
    }

    #[test]
    fn full_turn_is_identity() {
        let r = Rotation::about_axis(Vec3::new(1.0, 1.0, 1.0), 2.0 * PI);
        let v = Vec3::new(-2.0, 0.5, 4.0);
        assert_vec_eq(r.apply(v), v, 1e-12);
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let t = Transform {
            rotation: Rotation::about_axis(Vec3::new(1.0, 0.3, -2.0), 0.9),
            translation: Vec3::new(5.0, -3.0, 1.0),
        };
        let p = Vec3::new(0.1, 0.2, 0.3);
        assert_vec_eq(t.inverse().apply_point(t.apply_point(p)), p, 1e-12);
    }

    #[test]
    fn transform_compose_matches_sequential() {
        let t1 = Transform {
            rotation: Rotation::about_axis(Vec3::Y, 0.4),
            translation: Vec3::new(1.0, 0.0, 0.0),
        };
        let t2 = Transform {
            rotation: Rotation::about_axis(Vec3::X, -0.6),
            translation: Vec3::new(0.0, 2.0, 0.0),
        };
        let p = Vec3::new(3.0, 1.0, -1.0);
        assert_vec_eq(
            t1.compose(&t2).apply_point(p),
            t1.apply_point(t2.apply_point(p)),
            1e-12,
        );
    }

    #[test]
    fn about_pivot_fixes_the_pivot() {
        let pivot = Vec3::new(2.0, 2.0, 2.0);
        let t = Transform::about_pivot(Rotation::about_axis(Vec3::Z, 1.0), pivot, Vec3::ZERO);
        assert_vec_eq(t.apply_point(pivot), pivot, 1e-12);
    }

    #[test]
    fn apply_dir_ignores_translation() {
        let t = Transform::translation(Vec3::new(100.0, 0.0, 0.0));
        assert_vec_eq(t.apply_dir(Vec3::X), Vec3::X, 1e-15);
    }
}
