//! Approximate math kernels — the paper's "approximate math" toggle.
//!
//! §V.C: "We used approximate math for computing square root and power
//! functions", and §V.E: "Turning approximate math 'on' shifted the error
//! by 4-5% and decreased the running times by a factor of 1.42 on average."
//!
//! The GB kernels need three scalar functions per interaction:
//! `1/sqrt(x)` (for `1/f_GB`), `exp(x)` (for the Still factor) and
//! `x^(-1/3)` (for `R = (s/4π)^(-1/3)`). We provide fast variants:
//!
//! * [`rsqrt_fast`] — the classic bit-shift seed refined with two Newton
//!   iterations (~1e-6 relative error).
//! * [`exp_fast`] — Schraudolph-style exponent-field construction with a
//!   degree-2 polynomial correction (~1e-4 relative error on [-30, 0],
//!   the range `-r²/(4 R_i R_j)` actually takes).
//! * [`invcbrt_fast`] — bit-hack seed + Newton for `x^(-1/3)`.
//!
//! [`MathMode`] selects exact vs approximate at call sites; kernels take it
//! as a parameter so the ablation harness can flip one switch.

/// Selects exact (`std`) or approximate math in the energy kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MathMode {
    /// IEEE-accurate `f64::sqrt`, `f64::exp`, `f64::powf`.
    #[default]
    Exact,
    /// Fast approximations from this module.
    Approx,
}

impl MathMode {
    /// `1/sqrt(x)` under this mode.
    #[inline]
    pub fn rsqrt(self, x: f64) -> f64 {
        match self {
            MathMode::Exact => 1.0 / x.sqrt(),
            MathMode::Approx => rsqrt_fast(x),
        }
    }

    /// `exp(x)` under this mode.
    #[inline]
    pub fn exp(self, x: f64) -> f64 {
        match self {
            MathMode::Exact => x.exp(),
            MathMode::Approx => exp_fast(x),
        }
    }

    /// `x^(-1/3)` under this mode.
    #[inline]
    pub fn invcbrt(self, x: f64) -> f64 {
        match self {
            MathMode::Exact => x.powf(-1.0 / 3.0),
            MathMode::Approx => invcbrt_fast(x),
        }
    }

    /// In-place `x[i] ← x[i]^(-1/3)` over a slice.
    ///
    /// Identical per element to [`MathMode::invcbrt`]; same dispatch shape
    /// as [`MathMode::exp_slice`] / [`MathMode::rsqrt_slice`] — the mode
    /// branch is hoisted so each arm is a straight loop (the approximate
    /// arm is pure integer/float arithmetic and vectorizes).
    #[inline]
    pub fn invcbrt_slice(self, xs: &mut [f64]) {
        match self {
            MathMode::Exact => {
                for x in xs.iter_mut() {
                    *x = x.powf(-1.0 / 3.0);
                }
            }
            MathMode::Approx => {
                for x in xs.iter_mut() {
                    *x = invcbrt_fast(*x);
                }
            }
        }
    }

    /// In-place `x[i] ← 1/sqrt(x[i])` over a slice.
    ///
    /// Identical per element to [`MathMode::rsqrt`]; the mode dispatch is
    /// hoisted out of the loop so each arm is a branch-free loop LLVM can
    /// auto-vectorize (`vsqrtpd` + division in the exact arm, the
    /// Newton-refined bit hack in the approximate arm).
    #[inline]
    pub fn rsqrt_slice(self, xs: &mut [f64]) {
        match self {
            MathMode::Exact => {
                for x in xs.iter_mut() {
                    *x = 1.0 / x.sqrt();
                }
            }
            MathMode::Approx => {
                for x in xs.iter_mut() {
                    *x = rsqrt_fast(*x);
                }
            }
        }
    }

    /// In-place `x[i] ← exp(x[i])` over a slice.
    ///
    /// Identical per element to [`MathMode::exp`]. The approximate arm is
    /// fully branch-free polynomial + bit arithmetic in the GB exponent
    /// range and vectorizes; the exact arm is a tight libm loop.
    #[inline]
    pub fn exp_slice(self, xs: &mut [f64]) {
        match self {
            MathMode::Exact => {
                for x in xs.iter_mut() {
                    *x = x.exp();
                }
            }
            MathMode::Approx => {
                for x in xs.iter_mut() {
                    *x = exp_fast(*x);
                }
            }
        }
    }
}

/// Fast `1/sqrt(x)` for positive finite `x`.
///
/// 64-bit variant of the "magic constant" reciprocal square root with three
/// Newton–Raphson refinements. Relative error < 1e-10 across the positive
/// normal range.
#[inline]
pub fn rsqrt_fast(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    let i = x.to_bits();
    // Magic constant for f64 (Matthew Robertson's optimized value).
    let i = 0x5FE6_EB50_C7B5_37A9u64.wrapping_sub(i >> 1);
    let mut y = f64::from_bits(i);
    let half = 0.5 * x;
    // Three Newton iterations: y <- y (1.5 - 0.5 x y^2)
    y = y * (1.5 - half * y * y);
    y = y * (1.5 - half * y * y);
    y = y * (1.5 - half * y * y);
    y
}

/// Fast `sqrt(x)` = `x * rsqrt_fast(x)` (with a zero guard).
#[inline]
pub fn sqrt_fast(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    x * rsqrt_fast(x)
}

/// Fast `exp(x)`.
///
/// Splits `x = k ln2 + r` with `|r| <= ln2/2`, builds `2^k` through the
/// exponent field and evaluates a degree-5 Taylor polynomial for `e^r`.
/// Relative error < 2e-9 for `x` in [-700, 700]; underflows to 0 and
/// overflows to `f64::INFINITY` like `exp`. Entirely branch-free (the
/// range clamps are selects), so [`MathMode::exp_slice`] auto-vectorizes.
#[inline]
pub fn exp_fast(x: f64) -> f64 {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    let k = (x * LOG2E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // e^r via Horner on [-ln2/2, ln2/2].
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0 + r * (1.0 / 5040.0 + r / 40320.0)))))));
    // Scale by 2^k through the exponent bits. For any x ≥ -708 (the only
    // inputs that reach this product unclamped), k ≥ round(-708·log₂e) =
    // -1021 > -1023, so `p · 2^k` is normal and the exponent-field
    // construction is exact — no subnormal fallback is ever reachable.
    // The integer k is extracted with the shifter-constant trick instead
    // of a float→int cast: adding 1.5·2⁵² places k in the low mantissa
    // bits exactly (for |k| ≤ 2⁵¹ — every in-range x), and the 2⁵¹ offset
    // plus the shifter's exponent field both vanish under `<< 52`. A
    // `k as i64` cast here is saturating and compiles to a *scalar*
    // conversion per lane, which blocks vectorization of the slice path;
    // the shifter form is plain float-add + integer add/shift in every
    // lane. Out-of-range x leaves garbage in the low bits, but the
    // selects below discard the product for exactly those inputs, and
    // NaN propagates through `p` and both selects unchanged.
    const SHIFTER: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    let two_k = f64::from_bits((k + SHIFTER).to_bits().wrapping_add(1023) << 52);
    let v = p * two_k;
    let v = if x < -708.0 { 0.0 } else { v };
    if x > 709.0 {
        f64::INFINITY
    } else {
        v
    }
}

/// Fast `x^(-1/3)` for positive `x`.
///
/// Bit-hack initial guess (exponent division by 3) + three Newton
/// iterations on `f(y) = y^{-3} - x`. Converges to ~1 ulp (rel. err < 1e-13).
#[inline]
pub fn invcbrt_fast(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    // Seed: y ≈ x^(-1/3) via exponent manipulation.
    let i = x.to_bits();
    let i = 0x553E_F0FF_289D_D796u64.wrapping_sub(i / 3);
    let mut y = f64::from_bits(i);
    // Newton for y = x^{-1/3}:  y <- y (4 - x y^3) / 3
    for _ in 0..4 {
        y = y * (4.0 - x * y * y * y) * (1.0 / 3.0);
    }
    y
}

/// Fast cube root, `x^(1/3)`, for non-negative `x`.
#[inline]
pub fn cbrt_fast(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let inv = invcbrt_fast(x);
    // x^(1/3) = x * (x^(-1/3))^2
    x * inv * inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn rsqrt_accuracy_across_scales() {
        for &x in &[1e-10, 1e-3, 0.5, 1.0, 2.0, 3.7, 1e3, 1e12] {
            let e = rel_err(rsqrt_fast(x), 1.0 / x.sqrt());
            assert!(e < 5e-7, "x={x}: err={e}");
        }
    }

    #[test]
    fn sqrt_fast_zero_guard() {
        assert_eq!(sqrt_fast(0.0), 0.0);
        assert_eq!(sqrt_fast(-1.0), 0.0);
    }

    #[test]
    fn exp_accuracy_on_gb_range() {
        // The Still factor exponent -r^2/(4 R_i R_j) lives in [-inf, 0];
        // practically [-50, 0] matters.
        let mut x = -50.0;
        while x <= 0.0 {
            let e = rel_err(exp_fast(x), x.exp());
            assert!(e < 2e-9, "x={x}: err={e}");
            x += 0.37;
        }
    }

    #[test]
    fn exp_accuracy_positive_range() {
        for &x in &[0.0, 1.0, 2.5, 10.0, 100.0, 700.0] {
            let e = rel_err(exp_fast(x), x.exp());
            assert!(e < 2e-9, "x={x}: err={e}");
        }
    }

    #[test]
    fn exp_extremes() {
        assert_eq!(exp_fast(-1000.0), 0.0);
        assert_eq!(exp_fast(1000.0), f64::INFINITY);
        assert!((exp_fast(0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn invcbrt_accuracy() {
        for &x in &[1e-9, 1e-3, 0.1, 1.0, 8.0, 27.0, 1e6, 1e15] {
            let e = rel_err(invcbrt_fast(x), x.powf(-1.0 / 3.0));
            assert!(e < 1e-13, "x={x}: err={e}");
        }
    }

    #[test]
    fn invcbrt_exact_cube() {
        assert!((invcbrt_fast(8.0) - 0.5).abs() < 1e-13);
        assert!((invcbrt_fast(1.0) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn cbrt_fast_matches_std() {
        for &x in &[0.0, 1.0, 8.0, 27.0, std::f64::consts::PI, 1e9] {
            let e = (cbrt_fast(x) - x.cbrt()).abs();
            assert!(e <= 1e-9 * x.cbrt().max(1.0), "x={x}");
        }
    }

    #[test]
    fn math_mode_dispatch() {
        let x = 2.0;
        assert_eq!(MathMode::Exact.rsqrt(x), 1.0 / x.sqrt());
        assert!(rel_err(MathMode::Approx.rsqrt(x), 1.0 / x.sqrt()) < 5e-7);
        assert_eq!(MathMode::Exact.exp(-1.0), (-1.0f64).exp());
        assert!(rel_err(MathMode::Approx.exp(-1.0), (-1.0f64).exp()) < 2e-9);
        assert_eq!(MathMode::Exact.invcbrt(8.0), 8.0f64.powf(-1.0 / 3.0));
        assert!(rel_err(MathMode::Approx.invcbrt(8.0), 0.5) < 1e-13);
    }

    #[test]
    fn default_mode_is_exact() {
        assert_eq!(MathMode::default(), MathMode::Exact);
    }

    #[test]
    fn slice_variants_match_scalar_bitwise() {
        let inputs: Vec<f64> = (1..40).map(|i| 0.03 * i as f64).collect();
        for mode in [MathMode::Exact, MathMode::Approx] {
            let mut rs = inputs.clone();
            mode.rsqrt_slice(&mut rs);
            let mut es: Vec<f64> = inputs.iter().map(|x| -x).collect();
            mode.exp_slice(&mut es);
            let mut cs = inputs.clone();
            mode.invcbrt_slice(&mut cs);
            for (i, &x) in inputs.iter().enumerate() {
                assert_eq!(
                    rs[i].to_bits(),
                    mode.rsqrt(x).to_bits(),
                    "rsqrt {mode:?} x={x}"
                );
                assert_eq!(
                    es[i].to_bits(),
                    mode.exp(-x).to_bits(),
                    "exp {mode:?} x={x}"
                );
                assert_eq!(
                    cs[i].to_bits(),
                    mode.invcbrt(x).to_bits(),
                    "invcbrt {mode:?} x={x}"
                );
            }
        }
    }

    #[test]
    fn exp_slice_matches_scalar_at_extremes() {
        // The branch-free select path must agree with the scalar function
        // bit-for-bit across the underflow/overflow clamps, both domain
        // boundaries, infinities and NaN.
        let inputs = [
            -1.0e9,
            -1000.0,
            -708.5,
            -708.0 - 1e-12,
            -708.0,
            -707.999,
            -30.0,
            0.0,
            30.0,
            708.999,
            709.0,
            709.0 + 1e-12,
            710.0,
            1.0e9,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NAN,
        ];
        for mode in [MathMode::Exact, MathMode::Approx] {
            let mut xs = inputs.to_vec();
            mode.exp_slice(&mut xs);
            for (i, &x) in inputs.iter().enumerate() {
                assert_eq!(
                    xs[i].to_bits(),
                    mode.exp(x).to_bits(),
                    "exp {mode:?} x={x}"
                );
            }
        }
        // And the clamp values themselves stay what the GB kernels rely on.
        assert_eq!(exp_fast(-1000.0), 0.0);
        assert_eq!(exp_fast(1000.0), f64::INFINITY);
        assert!(exp_fast(f64::NAN).is_nan());
    }

    #[test]
    fn slice_variants_empty_ok() {
        MathMode::Exact.rsqrt_slice(&mut []);
        MathMode::Approx.exp_slice(&mut []);
        MathMode::Approx.invcbrt_slice(&mut []);
    }
}
