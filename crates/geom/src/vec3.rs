//! 3-component double-precision vector.
//!
//! Deliberately minimal: only the operations the energy kernels need, all
//! `#[inline]`, no SIMD intrinsics (the compiler autovectorizes the SoA
//! loops in `polaroct-core`; keeping `Vec3` simple avoids fighting LLVM).

use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A point or direction in 3-space, `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm. The kernels work with `norm2` wherever
    /// possible to avoid the square root.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared distance to `o`.
    #[inline]
    pub fn dist2(self, o: Vec3) -> f64 {
        (self - o).norm2()
    }

    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist2(o).sqrt()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// # Panics
    /// Debug-panics on the zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Linear interpolation: `self + t * (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Any orthonormal vector perpendicular to `self` (which must be
    /// non-zero). Used for building local frames on surface triangles.
    pub fn any_perpendicular(self) -> Vec3 {
        // Pick the axis least aligned with self to avoid degeneracy.
        let a = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::X
        } else if self.y.abs() <= self.z.abs() {
            Vec3::Y
        } else {
            Vec3::Z
        };
        self.cross(a).normalized()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_rel;

    #[test]
    fn dot_of_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn norm_of_345_triangle() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(1.0, -7.0, 2.5).normalized();
        assert!(approx_eq_rel(v.norm(), 1.0, 1e-14));
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 6.0, 3.0);
        assert_eq!(a.dist(b), b.dist(a));
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn any_perpendicular_is_orthonormal() {
        for v in [
            Vec3::X,
            Vec3::new(0.3, -0.9, 0.1),
            Vec3::new(1e-8, 1.0, 1e-8),
            Vec3::new(-5.0, -5.0, -5.0),
        ] {
            let p = v.any_perpendicular();
            assert!(v.dot(p).abs() < 1e-10, "not perpendicular for {v:?}");
            assert!(approx_eq_rel(p.norm(), 1.0, 1e-12));
        }
    }

    #[test]
    fn component_min_max() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn index_access() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, 2.5, 3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
