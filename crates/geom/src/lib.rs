//! # polaroct-geom
//!
//! Geometry primitives shared by every `polaroct` crate:
//!
//! * [`Vec3`] — a 3-component `f64` vector with the usual algebra.
//! * [`Aabb`] — axis-aligned bounding boxes (octree domains).
//! * [`BoundingSphere`] — enclosing spheres for octree nodes; the node
//!   "radius" `r_A` used by the paper's multipole-acceptance criteria.
//! * [`morton`] — 63-bit Morton (Z-order) codes used to build the
//!   cache-efficient linear octree.
//! * [`Transform`] — rigid-body transforms (rotation + translation) used to
//!   re-pose a ligand without rebuilding its octree (paper §IV.C, step 1).
//! * [`fastmath`] — the paper's "approximate math" toggle: fast reciprocal
//!   square root, exponential and cube root with a few ulps of error in
//!   exchange for speed (§V.C: "We used approximate math for computing
//!   square root and power functions").
//!
//! The crate is `no_std`-compatible in spirit (no allocation in hot paths)
//! but links `std` for `f64` intrinsics.

#![forbid(unsafe_code)]

pub mod aabb;
pub mod fastmath;
pub mod morton;
pub mod sphere;
pub mod transform;
pub mod vec3;

pub use aabb::Aabb;
pub use sphere::BoundingSphere;
pub use transform::Transform;
pub use vec3::Vec3;

/// Numerical tolerance used across the workspace for geometric predicates.
pub const GEOM_EPS: f64 = 1e-12;

/// Relative-error comparison helper used by tests across the workspace.
///
/// Returns `true` when `a` and `b` agree to within `rel` relative error
/// (falling back to an absolute tolerance near zero).
pub fn approx_eq_rel(a: f64, b: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= rel {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= rel * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_rel_exact() {
        assert!(approx_eq_rel(1.0, 1.0, 1e-15));
    }

    #[test]
    fn approx_eq_rel_near_zero_uses_absolute() {
        assert!(approx_eq_rel(1e-18, 0.0, 1e-12));
    }

    #[test]
    fn approx_eq_rel_relative_scale() {
        assert!(approx_eq_rel(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq_rel(1e12, 1.01e12, 1e-9));
    }
}
