//! 63-bit Morton (Z-order) codes.
//!
//! The linear octree in `polaroct-octree` sorts points by Morton code and
//! then carves nodes out of contiguous ranges. 21 bits per axis (63 bits
//! total) gives a 2^21 ≈ 2M-cell resolution per axis — far below the
//! ~0.1 Å atom spacing for any molecule that fits in memory.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Bits of resolution per axis.
pub const BITS_PER_AXIS: u32 = 21;
/// Number of cells per axis (2^21).
pub const CELLS_PER_AXIS: u64 = 1 << BITS_PER_AXIS;

/// Spread the low 21 bits of `v` so that there are two zero bits between
/// consecutive data bits (the classic "part by 2" bit trick).
#[inline]
pub fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x1F00000000FFFF;
    x = (x | (x << 16)) & 0x1F0000FF0000FF;
    x = (x | (x << 8)) & 0x100F00F00F00F00F;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`]: compact every third bit into the low 21 bits.
#[inline]
pub fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3;
    x = (x ^ (x >> 4)) & 0x100F00F00F00F00F;
    x = (x ^ (x >> 8)) & 0x1F0000FF0000FF;
    x = (x ^ (x >> 16)) & 0x1F00000000FFFF;
    x = (x ^ (x >> 32)) & 0x1F_FFFF;
    x
}

/// Interleave three 21-bit cell coordinates into a 63-bit Morton code.
/// Bit layout: x occupies bits {0,3,6,...}, y bits {1,4,7,...}, z bits
/// {2,5,8,...} — so the top 3 bits of the code select the octant at the
/// root, matching [`Aabb::octant`]'s bit convention.
#[inline]
pub fn encode_cells(cx: u64, cy: u64, cz: u64) -> u64 {
    debug_assert!(cx < CELLS_PER_AXIS && cy < CELLS_PER_AXIS && cz < CELLS_PER_AXIS);
    part1by2(cx) | (part1by2(cy) << 1) | (part1by2(cz) << 2)
}

/// Recover the three cell coordinates from a Morton code.
#[inline]
pub fn decode_cells(code: u64) -> (u64, u64, u64) {
    (
        compact1by2(code),
        compact1by2(code >> 1),
        compact1by2(code >> 2),
    )
}

/// Quantizer mapping points in a cubical domain onto Morton cells.
#[derive(Clone, Copy, Debug)]
pub struct MortonQuantizer {
    origin: Vec3,
    /// cells per unit length
    inv_cell: f64,
}

impl MortonQuantizer {
    /// Build a quantizer for the (cubical) `domain`. The domain **must** be
    /// a cube (use [`Aabb::cube_containing`]); a non-cubical box would skew
    /// the space-filling curve and break octree/Morton correspondence.
    pub fn new(domain: &Aabb) -> Self {
        let e = domain.extent();
        debug_assert!(
            (e.x - e.y).abs() < 1e-9 * e.x.abs().max(1.0)
                && (e.y - e.z).abs() < 1e-9 * e.y.abs().max(1.0),
            "Morton domain must be cubical"
        );
        let side = e.x.max(f64::MIN_POSITIVE);
        MortonQuantizer {
            origin: domain.min,
            inv_cell: CELLS_PER_AXIS as f64 / side,
        }
    }

    /// Cell coordinates of `p` (clamped to the domain).
    #[inline]
    pub fn cell_of(&self, p: Vec3) -> (u64, u64, u64) {
        let q = (p - self.origin) * self.inv_cell;
        let clamp = |v: f64| -> u64 {
            let v = v.max(0.0);
            (v as u64).min(CELLS_PER_AXIS - 1)
        };
        (clamp(q.x), clamp(q.y), clamp(q.z))
    }

    /// Morton code of `p`.
    #[inline]
    pub fn code_of(&self, p: Vec3) -> u64 {
        let (x, y, z) = self.cell_of(p);
        encode_cells(x, y, z)
    }

    /// Morton codes of a batch of points, in input order.
    ///
    /// Each code depends only on its own point, so callers may encode
    /// disjoint sub-slices concurrently and concatenate: the octree's
    /// parallel builder maps this over point chunks on its pool and
    /// gets bit-identical codes to a single serial call.
    pub fn codes_of(&self, points: &[Vec3]) -> Vec<u64> {
        points.iter().map(|&p| self.code_of(p)).collect()
    }
}

/// The child octant (0..8) selected by a Morton code at tree `level`
/// (level 0 = root split). Matches [`Aabb::octant`] numbering.
#[inline]
pub fn child_index_at_level(code: u64, level: u32) -> usize {
    debug_assert!(level < BITS_PER_AXIS);
    let shift = 3 * (BITS_PER_AXIS - 1 - level);
    ((code >> shift) & 0b111) as usize
}

/// Prefix of `code` down to (and including) `levels` root splits; two codes
/// share the same octree node at depth `levels` iff their prefixes match.
#[inline]
pub fn prefix_at_level(code: u64, levels: u32) -> u64 {
    if levels == 0 {
        return 0;
    }
    debug_assert!(levels <= BITS_PER_AXIS);
    let shift = 3 * (BITS_PER_AXIS - levels);
    code >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_compact_roundtrip() {
        for v in [0u64, 1, 2, 3, 0x1F_FFFF, 0x15555, 0xABCDE, 99999] {
            assert_eq!(compact1by2(part1by2(v)), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for &(x, y, z) in &[
            (0u64, 0u64, 0u64),
            (1, 2, 3),
            (CELLS_PER_AXIS - 1, 0, CELLS_PER_AXIS - 1),
            (123456, 654321, 111111),
        ] {
            assert_eq!(decode_cells(encode_cells(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn axis_bit_positions() {
        // x -> bit 0, y -> bit 1, z -> bit 2 of each triple.
        assert_eq!(encode_cells(1, 0, 0), 0b001);
        assert_eq!(encode_cells(0, 1, 0), 0b010);
        assert_eq!(encode_cells(0, 0, 1), 0b100);
    }

    #[test]
    fn morton_order_matches_octant_order_at_root() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(8.0));
        let q = MortonQuantizer::new(&domain);
        // A point in each root octant; codes must sort in octant order.
        let mut codes = Vec::new();
        for i in 0..8 {
            let c = domain.octant(i).center();
            codes.push((q.code_of(c), i));
        }
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted, "octant index order == Morton order");
        for (code, i) in codes {
            assert_eq!(child_index_at_level(code, 0), i);
        }
    }

    #[test]
    fn batch_codes_match_pointwise_and_concatenate() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(32.0));
        let q = MortonQuantizer::new(&domain);
        let pts: Vec<Vec3> = (0..37)
            .map(|i| Vec3::new(i as f64 * 0.7, (i * 3 % 11) as f64, 31.0 - i as f64 * 0.5))
            .collect();
        let whole = q.codes_of(&pts);
        assert_eq!(whole, pts.iter().map(|&p| q.code_of(p)).collect::<Vec<_>>());
        // Chunked encoding concatenates to the same codes (the parallel
        // builder's contract).
        let mut chunked = Vec::new();
        for chunk in pts.chunks(5) {
            chunked.extend_from_slice(&q.codes_of(chunk));
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn quantizer_clamps_out_of_domain_points() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let q = MortonQuantizer::new(&domain);
        let below = q.cell_of(Vec3::splat(-5.0));
        let above = q.cell_of(Vec3::splat(5.0));
        assert_eq!(below, (0, 0, 0));
        assert_eq!(
            above,
            (CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1)
        );
    }

    #[test]
    fn prefix_at_level_identifies_shared_ancestors() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(16.0));
        let q = MortonQuantizer::new(&domain);
        // Two points in the same root octant but different sub-octants.
        let a = q.code_of(Vec3::new(1.0, 1.0, 1.0));
        let b = q.code_of(Vec3::new(7.0, 7.0, 7.0));
        let c = q.code_of(Vec3::new(9.0, 9.0, 9.0));
        assert_eq!(prefix_at_level(a, 1), prefix_at_level(b, 1));
        assert_ne!(prefix_at_level(a, 1), prefix_at_level(c, 1));
        assert_eq!(prefix_at_level(a, 0), prefix_at_level(c, 0));
    }

    #[test]
    fn nearby_points_share_long_prefixes() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1024.0));
        let q = MortonQuantizer::new(&domain);
        let a = q.code_of(Vec3::new(100.0, 100.0, 100.0));
        let b = q.code_of(Vec3::new(100.001, 100.001, 100.001));
        let far = q.code_of(Vec3::new(900.0, 900.0, 900.0));
        let shared_ab = (a ^ b).leading_zeros();
        let shared_afar = (a ^ far).leading_zeros();
        assert!(shared_ab > shared_afar);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn non_cubical_domain_debug_panics() {
        let bad = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 1.0));
        let _ = MortonQuantizer::new(&bad);
    }
}
