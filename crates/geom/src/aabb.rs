//! Axis-aligned bounding boxes.
//!
//! The octree's spatial domain is a cube [`Aabb::cube_containing`] around
//! the input points; child octants are produced with [`Aabb::octant`].

use crate::vec3::Vec3;

/// Axis-aligned box described by its min/max corners.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// An "empty" box that absorbs any point via [`Aabb::grow`]
    /// (min = +inf, max = -inf).
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f64::INFINITY),
        max: Vec3::splat(f64::NEG_INFINITY),
    };

    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Smallest box containing every point of the iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.grow(p);
        }
        b
    }

    /// Smallest *cube* containing `inner`, centered on `inner`'s center,
    /// padded by `pad` on each side. Octrees subdivide cubes so that child
    /// cells stay cubical and Morton quantization is isotropic.
    pub fn cube_containing(inner: Aabb, pad: f64) -> Self {
        let c = inner.center();
        let half = inner.half_extent().max_component() + pad;
        Aabb {
            min: c - Vec3::splat(half),
            max: c + Vec3::splat(half),
        }
    }

    /// Expand to include `p`.
    #[inline]
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expand to include another box.
    #[inline]
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half of the box extents along each axis.
    #[inline]
    pub fn half_extent(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Full edge lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// True when no point has been absorbed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The `i`-th octant (0..8) of this box; bit 0 = +x half, bit 1 = +y
    /// half, bit 2 = +z half — matching the Morton child ordering in
    /// [`crate::morton`].
    pub fn octant(&self, i: usize) -> Aabb {
        debug_assert!(i < 8);
        let c = self.center();
        let (lo, hi) = (self.min, self.max);
        let min = Vec3::new(
            if i & 1 != 0 { c.x } else { lo.x },
            if i & 2 != 0 { c.y } else { lo.y },
            if i & 4 != 0 { c.z } else { lo.z },
        );
        let max = Vec3::new(
            if i & 1 != 0 { hi.x } else { c.x },
            if i & 2 != 0 { hi.y } else { c.y },
            if i & 4 != 0 { hi.z } else { c.z },
        );
        Aabb { min, max }
    }

    /// Squared distance from `p` to the closest point of the box (0 inside).
    pub fn dist2_to_point(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for ax in 0..3 {
            let v = p[ax];
            let lo = self.min[ax];
            let hi = self.max[ax];
            if v < lo {
                d2 += (lo - v) * (lo - v);
            } else if v > hi {
                d2 += (v - hi) * (v - hi);
            }
        }
        d2
    }

    /// Radius of the sphere circumscribing the box (center to corner).
    #[inline]
    pub fn circumradius(&self) -> f64 {
        self.half_extent().norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Vec3::new(1.0, -2.0, 3.0),
            Vec3::new(-1.0, 5.0, 0.0),
            Vec3::new(0.0, 0.0, -4.0),
        ];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, -4.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn empty_is_empty_until_grown() {
        let mut b = Aabb::EMPTY;
        assert!(b.is_empty());
        b.grow(Vec3::ZERO);
        assert!(!b.is_empty());
        assert!(b.contains(Vec3::ZERO));
    }

    #[test]
    fn cube_containing_is_cubical_and_contains() {
        let inner = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(4.0, 1.0, 2.0));
        let c = Aabb::cube_containing(inner, 0.5);
        let e = c.extent();
        assert_eq!(e.x, e.y);
        assert_eq!(e.y, e.z);
        assert!(c.contains(inner.min) && c.contains(inner.max));
        assert_eq!(e.x, 5.0); // 2*(2.0 + 0.5)
    }

    #[test]
    fn octants_partition_the_box() {
        let b = unit();
        // Each octant has 1/8 the volume; union of octants == box.
        let mut u = Aabb::EMPTY;
        for i in 0..8 {
            let o = b.octant(i);
            let e = o.extent();
            assert_eq!(e, Vec3::splat(0.5), "octant {i}");
            u = u.union(&o);
        }
        assert_eq!(u, b);
    }

    #[test]
    fn octant_bit_convention() {
        let b = unit();
        // Octant 0 is the low corner; octant 7 the high corner.
        assert_eq!(b.octant(0).min, Vec3::ZERO);
        assert_eq!(b.octant(7).max, Vec3::splat(1.0));
        // Bit 0 toggles x.
        assert_eq!(b.octant(1).min, Vec3::new(0.5, 0.0, 0.0));
        // Bit 1 toggles y.
        assert_eq!(b.octant(2).min, Vec3::new(0.0, 0.5, 0.0));
        // Bit 2 toggles z.
        assert_eq!(b.octant(4).min, Vec3::new(0.0, 0.0, 0.5));
    }

    #[test]
    fn dist2_inside_is_zero() {
        assert_eq!(unit().dist2_to_point(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn dist2_outside_corner() {
        // One unit away along each axis from the (1,1,1) corner.
        let d2 = unit().dist2_to_point(Vec3::splat(2.0));
        assert_eq!(d2, 3.0);
    }

    #[test]
    fn circumradius_unit_cube() {
        assert!((unit().circumradius() - (3.0f64).sqrt() * 0.5).abs() < 1e-15);
    }
}
