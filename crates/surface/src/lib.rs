//! # polaroct-surface
//!
//! Molecular-surface quadrature for the surface-based r⁶ Born-radius
//! approximation (Eq. 4 of the paper):
//!
//! ```text
//! 1/R_i³ ≈ (1/4π) Σ_k  w_k · (r_k − x_i)·n_k / |r_k − x_i|⁶
//! ```
//!
//! The paper triangulates a Gaussian-quadrature representation of the
//! molecular surface, yielding per-point positions `r_k`, outward unit
//! normals `n_k`, and weights `w_k` ("A constant number of quadrature
//! points per triangle are needed for high accuracy"). We reproduce that
//! pipeline from scratch:
//!
//! 1. [`icosphere`] — triangulate each atom's sphere by subdividing an
//!    icosahedron,
//! 2. [`dunavant`] — Dunavant symmetric Gaussian quadrature rules on
//!    triangles (the paper cites Dunavant 1985 for exactly this),
//! 3. [`cell_list`] — a uniform grid for buried-point tests,
//! 4. [`sas`] — assemble the exposed (solvent-accessible) surface: keep
//!    quadrature points not buried inside any other atom, normals pointing
//!    outward, weights scaled so each full sphere integrates to `4πr²`.
//!
//! For CMV the paper reports 1.93M quadrature points over 509,640 atoms
//! (~3.8 per atom): the default parameters here land in the same regime
//! (icosahedron × 1-point rule = 20 candidate points per atom, of which
//! roughly a quarter survive burial filtering in a packed interior).

#![forbid(unsafe_code)]

pub mod area;
pub mod cell_list;
pub mod dunavant;
pub mod icosphere;
pub mod sas;

pub use cell_list::CellList;
pub use dunavant::{rule, DunavantRule};
pub use icosphere::Icosphere;
pub use sas::{surface_quadrature, QuadratureSet, SurfaceParams};
