//! Uniform-grid cell list over atom centers.
//!
//! Used by the surface builder for buried-point tests, and reused by
//! `polaroct-baselines` as the substrate for nonbonded-list construction
//! (the nblist the paper compares octrees against).

use polaroct_geom::{Aabb, Vec3};

/// A uniform grid binning point indices by cell.
#[derive(Clone, Debug)]
pub struct CellList {
    origin: Vec3,
    cell: f64,
    dims: [usize; 3],
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl CellList {
    /// Bin `points` into cells of edge `cell_size` (must exceed the query
    /// radius you intend to use with [`CellList::for_neighbors`] for the
    /// 27-cell stencil to be sufficient... see `for_neighbors`).
    pub fn new(points: &[Vec3], cell_size: f64) -> Self {
        // PANIC-OK: precondition assert — an empty point set has no cells to bin.
        assert!(!points.is_empty());
        // PANIC-OK: precondition assert — a non-positive cell edge is a caller bug.
        assert!(cell_size > 0.0);
        let bbox = Aabb::from_points(points.iter().copied());
        let origin = bbox.min - Vec3::splat(cell_size * 0.5);
        let extent = bbox.max - origin + Vec3::splat(cell_size * 0.5);
        let dims = [
            (extent.x / cell_size).ceil() as usize + 1,
            (extent.y / cell_size).ceil() as usize + 1,
            (extent.z / cell_size).ceil() as usize + 1,
        ];
        let ncells = dims[0] * dims[1] * dims[2];

        // Counting sort into CSR.
        let cell_of = |p: Vec3| -> usize {
            let cx = ((p.x - origin.x) / cell_size) as usize;
            let cy = ((p.y - origin.y) / cell_size) as usize;
            let cz = ((p.z - origin.z) / cell_size) as usize;
            (cz * dims[1] + cy) * dims[0] + cx
        };
        let mut counts = vec![0u32; ncells + 1];
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        CellList { origin, cell: cell_size, dims, starts, entries }
    }

    /// Grid dimensions (diagnostics).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of cells allocated.
    pub fn cell_count(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Visit the indices of all points within the 27-cell neighborhood of
    /// `p`. **Completeness requires `radius <= cell_size`**: every point
    /// within `radius` of `p` is visited (plus some farther ones — callers
    /// must distance-check). Debug-asserts that precondition.
    pub fn for_neighbors(&self, p: Vec3, radius: f64, mut f: impl FnMut(u32)) {
        debug_assert!(
            radius <= self.cell + 1e-9,
            "query radius {radius} exceeds cell size {}",
            self.cell
        );
        let cx = ((p.x - self.origin.x) / self.cell).floor() as isize;
        let cy = ((p.y - self.origin.y) / self.cell).floor() as isize;
        let cz = ((p.z - self.origin.z) / self.cell).floor() as isize;
        for dz in -1..=1isize {
            let z = cz + dz;
            if z < 0 || z as usize >= self.dims[2] {
                continue;
            }
            for dy in -1..=1isize {
                let y = cy + dy;
                if y < 0 || y as usize >= self.dims[1] {
                    continue;
                }
                for dx in -1..=1isize {
                    let x = cx + dx;
                    if x < 0 || x as usize >= self.dims[0] {
                        continue;
                    }
                    let c = (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    let (b, e) = (self.starts[c] as usize, self.starts[c + 1] as usize);
                    for &idx in &self.entries[b..e] {
                        f(idx);
                    }
                }
            }
        }
    }

    /// Collect neighbor candidates (test convenience).
    pub fn neighbors(&self, p: Vec3, radius: f64) -> Vec<u32> {
        let mut v = Vec::new();
        self.for_neighbors(p, radius, |i| v.push(i));
        v
    }

    /// Heap bytes (for the nblist-vs-octree memory comparison).
    pub fn memory_bytes(&self) -> usize {
        self.starts.len() * 4 + self.entries.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64, side: f64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * side
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn finds_all_points_within_radius() {
        let pts = cloud(500, 5, 20.0);
        let cl = CellList::new(&pts, 3.0);
        for (qi, &q) in pts.iter().enumerate().step_by(17) {
            let brute: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, &p)| p.dist2(q) <= 9.0)
                .map(|(i, _)| i as u32)
                .collect();
            let mut got = cl.neighbors(q, 3.0);
            got.retain(|&i| pts[i as usize].dist2(q) <= 9.0);
            got.sort_unstable();
            assert_eq!(got, brute, "query point {qi}");
        }
    }

    #[test]
    fn every_point_binned_once() {
        let pts = cloud(300, 9, 10.0);
        let cl = CellList::new(&pts, 2.0);
        assert_eq!(cl.entries.len(), 300);
        let mut seen = vec![false; 300];
        for &e in &cl.entries {
            assert!(!seen[e as usize]);
            seen[e as usize] = true;
        }
    }

    #[test]
    fn query_off_grid_is_safe() {
        let pts = cloud(100, 3, 5.0);
        let cl = CellList::new(&pts, 2.0);
        // Far outside the grid: no neighbors, no panic.
        assert!(cl.neighbors(Vec3::splat(1e6), 2.0).is_empty());
        assert!(cl.neighbors(Vec3::splat(-1e6), 2.0).is_empty());
    }

    #[test]
    fn single_point_grid() {
        let cl = CellList::new(&[Vec3::ZERO], 1.5);
        assert_eq!(cl.neighbors(Vec3::ZERO, 1.5), vec![0]);
    }

    #[test]
    fn memory_scales_with_points_not_radius() {
        // The octree-vs-nblist story: cell list structure itself is O(N).
        let pts = cloud(1000, 4, 30.0);
        let small = CellList::new(&pts, 3.0);
        assert_eq!(small.entries.len(), 1000);
        // entries size is independent of later query radius choices.
        assert!(small.memory_bytes() < 1_000_000);
    }
}
