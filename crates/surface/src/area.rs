//! Analytic surface-area oracles.
//!
//! Closed-form exposed areas for one- and two-sphere systems, used to
//! validate the quadrature sampler beyond the single-sphere case: the
//! buried cap of a sphere intersected by another has a known area, so the
//! sampler's total weight can be checked against geometry rather than
//! against itself.

use polaroct_geom::Vec3;

/// Area of the spherical cap of a sphere with radius `r1` that lies
/// *inside* a second sphere of radius `r2` at center distance `d`
/// (0 when disjoint, `4πr1²` when fully swallowed).
pub fn buried_cap_area(r1: f64, r2: f64, d: f64) -> f64 {
    assert!(r1 > 0.0 && r2 > 0.0 && d >= 0.0);
    let full = 4.0 * std::f64::consts::PI * r1 * r1;
    if d >= r1 + r2 {
        return 0.0; // disjoint
    }
    if d + r1 <= r2 {
        return full; // sphere 1 entirely inside sphere 2
    }
    if d + r2 <= r1 {
        return 0.0; // sphere 2 entirely inside sphere 1: no cap of 1 buried
    }
    // Height of the cap of sphere 1 cut by the radical plane:
    // x = (d² + r1² − r2²) / (2d) is the distance from center 1 to the
    // intersection plane; the buried cap has height h = r1 − x.
    let x = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
    let h = r1 - x;
    debug_assert!((0.0..=2.0 * r1 + 1e-12).contains(&h));
    2.0 * std::f64::consts::PI * r1 * h
}

/// Exact exposed area of a two-sphere system (vdW surface):
/// `4πr1² + 4πr2² − buried(1 in 2) − buried(2 in 1)`.
pub fn two_sphere_exposed_area(r1: f64, r2: f64, d: f64) -> f64 {
    let a1 = 4.0 * std::f64::consts::PI * r1 * r1;
    let a2 = 4.0 * std::f64::consts::PI * r2 * r2;
    a1 + a2 - buried_cap_area(r1, r2, d) - buried_cap_area(r2, r1, d)
}

/// Convenience: exact exposed area for two atoms given their centers.
pub fn two_atom_exposed_area(c1: Vec3, r1: f64, c2: Vec3, r2: f64) -> f64 {
    two_sphere_exposed_area(r1, r2, c1.dist(c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sas::{surface_quadrature, SurfaceParams};
    use polaroct_molecule::{Atom, Element, Molecule};

    const FOUR_PI: f64 = 4.0 * std::f64::consts::PI;

    #[test]
    fn disjoint_spheres_bury_nothing() {
        assert_eq!(buried_cap_area(1.0, 1.0, 3.0), 0.0);
        assert!((two_sphere_exposed_area(1.0, 2.0, 10.0) - FOUR_PI * 5.0).abs() < 1e-12);
    }

    #[test]
    fn swallowed_sphere_fully_buried() {
        assert!((buried_cap_area(1.0, 5.0, 0.5) - FOUR_PI).abs() < 1e-12);
        // Exposed area of the pair is just the big sphere's.
        assert!((two_sphere_exposed_area(1.0, 5.0, 0.5) - FOUR_PI * 25.0).abs() < 1e-12);
    }

    #[test]
    fn equal_spheres_touching_at_centers_half_buried() {
        // d = r: the radical plane passes through sphere 2's center... for
        // equal radii at distance d=r, x = d/2, h = r/2, cap = πr².
        let r = 1.5;
        let cap = buried_cap_area(r, r, r);
        assert!((cap - std::f64::consts::PI * r * r).abs() < 1e-12);
    }

    #[test]
    fn cap_area_is_continuous_at_boundaries() {
        let r1 = 1.2;
        let r2 = 1.6;
        // Approach the disjoint boundary from inside.
        let eps = 1e-9;
        let near_touch = buried_cap_area(r1, r2, r1 + r2 - eps);
        assert!(near_touch < 1e-6, "cap {near_touch} at near-touch");
        // Approach full burial.
        let near_swallow = buried_cap_area(r1, r2, r2 - r1 + eps);
        assert!((near_swallow - FOUR_PI * r1 * r1).abs() < 1e-5);
    }

    #[test]
    fn quadrature_matches_analytic_two_sphere_area() {
        // The sampler drops whole points, so its area converges to the
        // analytic value as the sampling refines.
        let (r1, r2, d) = (1.7, 1.5, 2.2);
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom { pos: Vec3::ZERO, radius: r1, charge: 0.0, element: Element::C },
                Atom { pos: Vec3::new(d, 0.0, 0.0), radius: r2, charge: 0.0, element: Element::O },
            ],
        );
        let exact = two_sphere_exposed_area(r1, r2, d);
        let sampled = surface_quadrature(
            &mol,
            SurfaceParams { icosphere_level: 4, ..Default::default() },
        )
        .total_weight();
        let rel = ((sampled - exact) / exact).abs();
        assert!(rel < 0.02, "sampled {sampled} vs exact {exact} ({rel:.3} rel)");
    }

    #[test]
    fn sampler_error_shrinks_with_refinement() {
        let (r1, r2, d) = (1.7, 1.7, 2.0);
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom { pos: Vec3::ZERO, radius: r1, charge: 0.0, element: Element::C },
                Atom { pos: Vec3::new(d, 0.0, 0.0), radius: r2, charge: 0.0, element: Element::C },
            ],
        );
        let exact = two_sphere_exposed_area(r1, r2, d);
        let err = |level: u32| {
            let a = surface_quadrature(
                &mol,
                SurfaceParams { icosphere_level: level, ..Default::default() },
            )
            .total_weight();
            ((a - exact) / exact).abs()
        };
        let coarse = err(1);
        let fine = err(4);
        assert!(fine <= coarse, "refinement made it worse: {coarse} -> {fine}");
    }
}
