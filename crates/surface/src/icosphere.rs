//! Icosphere: a unit sphere triangulated by recursive subdivision of a
//! regular icosahedron. Subdivision level `L` yields `20·4^L` triangles
//! with near-uniform area — the triangulated surface the Dunavant rules
//! are applied to.

use polaroct_geom::Vec3;
use std::collections::HashMap;

/// A triangulated unit sphere.
#[derive(Clone, Debug)]
pub struct Icosphere {
    /// Unit-length vertex positions.
    pub vertices: Vec<Vec3>,
    /// Counter-clockwise (outward-facing) vertex index triples.
    pub triangles: Vec<[u32; 3]>,
}

impl Icosphere {
    /// Build an icosphere at subdivision `level` (0 = plain icosahedron,
    /// 20 faces; each level quadruples the face count).
    pub fn new(level: u32) -> Self {
        // PANIC-OK: precondition assert — the level cap is documented in the message.
        assert!(level <= 7, "icosphere level {level} would be enormous");
        let mut sphere = Self::icosahedron();
        for _ in 0..level {
            sphere = sphere.subdivide();
        }
        sphere
    }

    /// Number of faces at a given level without building it.
    pub fn face_count(level: u32) -> usize {
        20usize << (2 * level)
    }

    fn icosahedron() -> Self {
        // Golden-ratio construction; vertices normalized to unit length.
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        let raw = [
            (-1.0, phi, 0.0),
            (1.0, phi, 0.0),
            (-1.0, -phi, 0.0),
            (1.0, -phi, 0.0),
            (0.0, -1.0, phi),
            (0.0, 1.0, phi),
            (0.0, -1.0, -phi),
            (0.0, 1.0, -phi),
            (phi, 0.0, -1.0),
            (phi, 0.0, 1.0),
            (-phi, 0.0, -1.0),
            (-phi, 0.0, 1.0),
        ];
        let vertices: Vec<Vec3> =
            raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z).normalized()).collect();
        // The 20 canonical faces, wound counter-clockwise seen from
        // outside.
        let triangles: Vec<[u32; 3]> = vec![
            [0, 11, 5],
            [0, 5, 1],
            [0, 1, 7],
            [0, 7, 10],
            [0, 10, 11],
            [1, 5, 9],
            [5, 11, 4],
            [11, 10, 2],
            [10, 7, 6],
            [7, 1, 8],
            [3, 9, 4],
            [3, 4, 2],
            [3, 2, 6],
            [3, 6, 8],
            [3, 8, 9],
            [4, 9, 5],
            [2, 4, 11],
            [6, 2, 10],
            [8, 6, 7],
            [9, 8, 1],
        ];
        Icosphere { vertices, triangles }
    }

    /// One 4-to-1 subdivision step (midpoints projected back to the
    /// sphere).
    fn subdivide(&self) -> Self {
        let mut vertices = self.vertices.clone();
        let mut midpoint_cache: HashMap<(u32, u32), u32> = HashMap::new();
        let mut triangles = Vec::with_capacity(self.triangles.len() * 4);

        let mut midpoint = |a: u32, b: u32, vertices: &mut Vec<Vec3>| -> u32 {
            let key = if a < b { (a, b) } else { (b, a) };
            *midpoint_cache.entry(key).or_insert_with(|| {
                let m = ((vertices[a as usize] + vertices[b as usize]) * 0.5).normalized();
                vertices.push(m);
                (vertices.len() - 1) as u32
            })
        };

        for &[a, b, c] in &self.triangles {
            let ab = midpoint(a, b, &mut vertices);
            let bc = midpoint(b, c, &mut vertices);
            let ca = midpoint(c, a, &mut vertices);
            triangles.push([a, ab, ca]);
            triangles.push([b, bc, ab]);
            triangles.push([c, ca, bc]);
            triangles.push([ab, bc, ca]);
        }
        Icosphere { vertices, triangles }
    }

    /// Planar area of triangle `t`.
    pub fn triangle_area(&self, t: usize) -> f64 {
        let [a, b, c] = self.triangles[t];
        let (pa, pb, pc) =
            (self.vertices[a as usize], self.vertices[b as usize], self.vertices[c as usize]);
        (pb - pa).cross(pc - pa).norm() * 0.5
    }

    /// Total planar (inscribed-polyhedron) area; approaches `4π` as the
    /// level grows.
    pub fn total_area(&self) -> f64 {
        (0..self.triangles.len()).map(|t| self.triangle_area(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icosahedron_has_12_vertices_20_faces() {
        let s = Icosphere::new(0);
        assert_eq!(s.vertices.len(), 12);
        assert_eq!(s.triangles.len(), 20);
    }

    #[test]
    fn subdivision_counts() {
        for level in 0..4u32 {
            let s = Icosphere::new(level);
            assert_eq!(s.triangles.len(), Icosphere::face_count(level));
            // Euler: V = 2 + E - F, E = 3F/2  =>  V = 2 + F/2
            assert_eq!(s.vertices.len(), 2 + s.triangles.len() / 2);
        }
    }

    #[test]
    fn vertices_are_unit_length() {
        let s = Icosphere::new(2);
        for v in &s.vertices {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn faces_wind_outward() {
        // For a sphere around the origin, the triangle normal must point
        // away from the origin (positive dot with the centroid).
        for level in 0..3u32 {
            let s = Icosphere::new(level);
            for &[a, b, c] in &s.triangles {
                let (pa, pb, pc) =
                    (s.vertices[a as usize], s.vertices[b as usize], s.vertices[c as usize]);
                let n = (pb - pa).cross(pc - pa);
                let centroid = (pa + pb + pc) / 3.0;
                assert!(n.dot(centroid) > 0.0, "inward-facing triangle at level {level}");
            }
        }
    }

    #[test]
    fn total_area_converges_to_sphere_area() {
        let four_pi = 4.0 * std::f64::consts::PI;
        let a0 = Icosphere::new(0).total_area();
        let a2 = Icosphere::new(2).total_area();
        let a3 = Icosphere::new(3).total_area();
        assert!(a0 < a2 && a2 < a3 && a3 < four_pi);
        assert!((four_pi - a3) / four_pi < 0.01, "level 3 within 1% of 4π");
    }

    #[test]
    fn no_degenerate_triangles() {
        let s = Icosphere::new(2);
        for t in 0..s.triangles.len() {
            assert!(s.triangle_area(t) > 1e-6);
        }
    }

    #[test]
    fn shared_edges_share_midpoints() {
        // Subdivision must not duplicate vertices: vertex count follows
        // Euler exactly (checked above); also no two vertices coincide.
        let s = Icosphere::new(1);
        for i in 0..s.vertices.len() {
            for j in (i + 1)..s.vertices.len() {
                assert!(s.vertices[i].dist2(s.vertices[j]) > 1e-12);
            }
        }
    }
}
