//! Dunavant symmetric Gaussian quadrature rules for triangles.
//!
//! The paper cites Dunavant (1985), "High degree efficient symmetrical
//! Gaussian quadrature rules for the triangle", for its surface
//! integration. A rule of degree `d` integrates all bivariate polynomials
//! of total degree ≤ `d` exactly over the triangle. Points are given in
//! barycentric coordinates; weights are normalized to sum to 1 (i.e. they
//! are fractions of the triangle's area).

/// A quadrature rule: barycentric points and matching area-fraction
/// weights.
#[derive(Clone, Debug)]
pub struct DunavantRule {
    /// Polynomial degree of exactness.
    pub degree: u32,
    /// Barycentric coordinates (sum to 1) of each quadrature point.
    pub points: Vec<[f64; 3]>,
    /// Weights, summing to 1.
    pub weights: Vec<f64>,
}

impl DunavantRule {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Push all distinct permutations of a barycentric multiplicity class.
fn push_class(points: &mut Vec<[f64; 3]>, weights: &mut Vec<f64>, bary: [f64; 3], w: f64) {
    let perms: &[[usize; 3]] =
        &[[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    let mut seen: Vec<[f64; 3]> = Vec::new();
    for &p in perms {
        let cand = [bary[p[0]], bary[p[1]], bary[p[2]]];
        if !seen.iter().any(|s| {
            (s[0] - cand[0]).abs() < 1e-14
                && (s[1] - cand[1]).abs() < 1e-14
                && (s[2] - cand[2]).abs() < 1e-14
        }) {
            seen.push(cand);
        }
    }
    for c in seen {
        points.push(c);
        weights.push(w);
    }
}

/// The Dunavant rule of the requested `degree` (1..=5 supported; higher
/// degrees clamp to 5 — the Born integrand is smooth away from the
/// molecule, so degree 5 is already overkill in practice).
pub fn rule(degree: u32) -> DunavantRule {
    let mut points = Vec::new();
    let mut weights = Vec::new();
    let degree = degree.clamp(1, 5);
    match degree {
        1 => {
            // 1 point: centroid.
            push_class(&mut points, &mut weights, [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 1.0);
        }
        2 => {
            // 3 points.
            push_class(&mut points, &mut weights, [2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0], 1.0 / 3.0);
        }
        3 => {
            // 4 points (has a negative centroid weight — standard).
            push_class(&mut points, &mut weights, [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], -27.0 / 48.0);
            push_class(&mut points, &mut weights, [0.6, 0.2, 0.2], 25.0 / 48.0);
        }
        4 => {
            // 6 points, two symmetry classes.
            push_class(
                &mut points,
                &mut weights,
                [0.108_103_018_168_070, 0.445_948_490_915_965, 0.445_948_490_915_965],
                0.223_381_589_678_011,
            );
            push_class(
                &mut points,
                &mut weights,
                [0.816_847_572_980_459, 0.091_576_213_509_771, 0.091_576_213_509_771],
                0.109_951_743_655_322,
            );
        }
        _ => {
            // Degree 5: 7 points.
            push_class(&mut points, &mut weights, [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 0.225);
            push_class(
                &mut points,
                &mut weights,
                [0.059_715_871_789_770, 0.470_142_064_105_115, 0.470_142_064_105_115],
                0.132_394_152_788_506,
            );
            push_class(
                &mut points,
                &mut weights,
                [0.797_426_985_353_087, 0.101_286_507_323_456, 0.101_286_507_323_456],
                0.125_939_180_544_827,
            );
        }
    }
    DunavantRule { degree, points, weights }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Integrate x^a y^b over the reference triangle (0,0)-(1,0)-(0,1)
    /// using a rule; exact value is a! b! / (a+b+2)!.
    fn integrate_monomial(r: &DunavantRule, a: u32, b: u32) -> f64 {
        // Reference triangle area = 1/2; rule weights are area fractions.
        let mut sum = 0.0;
        for (bary, w) in r.points.iter().zip(&r.weights) {
            // Map barycentric to (x, y) on the reference triangle with
            // vertices v0=(0,0), v1=(1,0), v2=(0,1).
            let x = bary[1];
            let y = bary[2];
            sum += w * x.powi(a as i32) * y.powi(b as i32);
        }
        sum * 0.5
    }

    fn exact_monomial(a: u32, b: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|k| k as f64).product()
        }
        fact(a) * fact(b) / fact(a + b + 2)
    }

    #[test]
    fn expected_point_counts() {
        assert_eq!(rule(1).len(), 1);
        assert_eq!(rule(2).len(), 3);
        assert_eq!(rule(3).len(), 4);
        assert_eq!(rule(4).len(), 6);
        assert_eq!(rule(5).len(), 7);
    }

    #[test]
    fn weights_sum_to_one() {
        for d in 1..=5 {
            let r = rule(d);
            let s: f64 = r.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "degree {d}: weight sum {s}");
        }
    }

    #[test]
    fn barycentric_points_are_valid() {
        for d in 1..=5 {
            for p in &rule(d).points {
                assert!((p[0] + p[1] + p[2] - 1.0).abs() < 1e-12);
                // Dunavant rules up to degree 5 have interior points.
                assert!(p.iter().all(|&c| c > 0.0 && c < 1.0));
            }
        }
    }

    #[test]
    fn rules_are_exact_to_their_degree() {
        for d in 1..=5u32 {
            let r = rule(d);
            for a in 0..=d {
                for b in 0..=(d - a) {
                    let got = integrate_monomial(&r, a, b);
                    let want = exact_monomial(a, b);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "degree {d} fails on x^{a} y^{b}: got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_3_fails_on_degree_4_monomial() {
        // Sanity: exactness claims are tight.
        let r = rule(3);
        let got = integrate_monomial(&r, 4, 0);
        let want = exact_monomial(4, 0);
        assert!((got - want).abs() > 1e-6);
    }

    #[test]
    fn out_of_range_degrees_clamp() {
        assert_eq!(rule(0).degree, 1);
        assert_eq!(rule(9).degree, 5);
    }
}
