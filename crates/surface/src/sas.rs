//! Exposed-surface quadrature assembly.
//!
//! For every atom, a triangulated sphere template (icosphere × Dunavant
//! rule) is scaled to the atom's van der Waals radius; points buried
//! inside any other atom are discarded. What remains approximates the
//! molecule's exposed (van der Waals / solvent-accessible) surface with
//! positions `r_k`, **outward** unit normals `n_k` and weights `w_k` whose
//! per-sphere sum is exactly `4πr²` — so the divergence-theorem identity
//! behind the r⁶ Born integral holds to quadrature accuracy.

use crate::cell_list::CellList;
use crate::dunavant::{rule, DunavantRule};
use crate::icosphere::Icosphere;
use polaroct_geom::Vec3;
use polaroct_molecule::Molecule;

/// Parameters for [`surface_quadrature`].
#[derive(Clone, Copy, Debug)]
pub struct SurfaceParams {
    /// Icosphere subdivision level (0 ⇒ 20 triangles per atom).
    pub icosphere_level: u32,
    /// Dunavant rule degree (1 ⇒ 1 point per triangle).
    pub quadrature_degree: u32,
    /// Probe radius added to every atom when testing burial (0 = plain
    /// van der Waals surface; 1.4 Å ≈ water-probe SAS).
    pub probe_radius: f64,
    /// Slack subtracted from the burying sphere's radius so boundary
    /// points (exactly on two spheres) survive.
    pub burial_slack: f64,
}

impl Default for SurfaceParams {
    fn default() -> Self {
        SurfaceParams {
            icosphere_level: 0,
            quadrature_degree: 1,
            probe_radius: 0.0,
            burial_slack: 1e-9,
        }
    }
}

impl SurfaceParams {
    /// Candidate quadrature points per atom before burial filtering.
    pub fn points_per_atom(&self) -> usize {
        Icosphere::face_count(self.icosphere_level) * rule(self.quadrature_degree).len()
    }
}

/// The sampled surface: SoA arrays of equal length.
#[derive(Clone, Debug, Default)]
pub struct QuadratureSet {
    /// Point positions `r_k` (Å).
    pub positions: Vec<Vec3>,
    /// Outward unit surface normals `n_k`.
    pub normals: Vec<Vec3>,
    /// Quadrature weights `w_k` (Å²); Σ over an unburied sphere = `4πr²`.
    pub weights: Vec<f64>,
    /// Index of the atom each point came from (diagnostics/tests).
    pub source_atom: Vec<u32>,
}

impl QuadratureSet {
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Total weight ≈ exposed surface area (Å²).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Heap bytes (memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.positions.len() * std::mem::size_of::<Vec3>() * 2
            + self.weights.len() * 8
            + self.source_atom.len() * 4
    }
}

/// The per-atom template: unit directions and unit-sphere weights
/// (summing to 4π).
struct SphereTemplate {
    dirs: Vec<Vec3>,
    weights: Vec<f64>,
}

fn sphere_template(level: u32, degree: u32) -> SphereTemplate {
    let ico = Icosphere::new(level);
    let r: DunavantRule = rule(degree);
    let mut dirs = Vec::with_capacity(ico.triangles.len() * r.len());
    let mut weights = Vec::with_capacity(dirs.capacity());
    for (t, &[a, b, c]) in ico.triangles.iter().enumerate() {
        let (pa, pb, pc) =
            (ico.vertices[a as usize], ico.vertices[b as usize], ico.vertices[c as usize]);
        let area = ico.triangle_area(t);
        for (bary, w) in r.points.iter().zip(&r.weights) {
            let p = pa * bary[0] + pb * bary[1] + pc * bary[2];
            // Project onto the sphere; the weight stays proportional to
            // the *planar* patch area and is re-normalized below.
            dirs.push(p.normalized());
            weights.push(w * area);
        }
    }
    // Normalize so the unit-sphere weights sum to exactly 4π: the
    // triangulation underestimates the sphere area, and this global
    // correction removes that bias (making an isolated atom's Born radius
    // exact — see tests in polaroct-core).
    let four_pi = 4.0 * std::f64::consts::PI;
    let sum: f64 = weights.iter().sum();
    let scale = four_pi / sum;
    for w in &mut weights {
        *w *= scale;
    }
    SphereTemplate { dirs, weights }
}

/// Sample the exposed surface of `mol`.
///
/// Runs in `O(M · points_per_atom · neighbors)` using a cell list for the
/// burial tests. Deterministic (no randomness).
pub fn surface_quadrature(mol: &Molecule, params: SurfaceParams) -> QuadratureSet {
    // PANIC-OK: precondition assert — an empty molecule has no surface to sample.
    assert!(!mol.is_empty(), "cannot sample the surface of an empty molecule");
    let template = sphere_template(params.icosphere_level, params.quadrature_degree);

    let r_max: f64 =
        mol.radii.iter().cloned().fold(0.0f64, f64::max) + params.probe_radius;
    // Cell size must cover the largest burial query radius.
    let cells = CellList::new(&mol.positions, (2.0 * r_max).max(1.0));

    let mut out = QuadratureSet::default();
    out.positions.reserve(mol.len() * template.dirs.len() / 3);

    for i in 0..mol.len() {
        let xi = mol.positions[i];
        let ri = mol.radii[i] + params.probe_radius;
        let r2scale = ri * ri;
        for (u, &w) in template.dirs.iter().zip(&template.weights) {
            let p = xi + *u * ri;
            // Buried inside any *other* atom (inflated by the probe)?
            let mut buried = false;
            cells.for_neighbors(p, r_max, |j| {
                if buried || j as usize == i {
                    return;
                }
                let rj = mol.radii[j as usize] + params.probe_radius - params.burial_slack;
                if p.dist2(mol.positions[j as usize]) < rj * rj {
                    buried = true;
                }
            });
            if !buried {
                out.positions.push(p);
                out.normals.push(*u);
                out.weights.push(w * r2scale);
                out.source_atom.push(i as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaroct_molecule::{synth, Atom, Element, Molecule};

    fn single_atom(r: f64) -> Molecule {
        Molecule::from_atoms(
            "one",
            [Atom { pos: Vec3::ZERO, radius: r, charge: 0.0, element: Element::C }],
        )
    }

    #[test]
    fn isolated_atom_total_weight_is_sphere_area() {
        for r in [1.2, 1.7, 2.0] {
            let q = surface_quadrature(&single_atom(r), SurfaceParams::default());
            let want = 4.0 * std::f64::consts::PI * r * r;
            assert!((q.total_weight() - want).abs() < 1e-9 * want, "r={r}");
            assert_eq!(q.len(), SurfaceParams::default().points_per_atom());
        }
    }

    #[test]
    fn normals_are_outward_units() {
        let q = surface_quadrature(&single_atom(1.7), SurfaceParams::default());
        for (p, n) in q.positions.iter().zip(&q.normals) {
            assert!((n.norm() - 1.0).abs() < 1e-12);
            // For a sphere at the origin, outward normal == direction.
            assert!(n.dot(*p) > 0.0);
        }
    }

    #[test]
    fn points_lie_on_their_sphere() {
        let q = surface_quadrature(&single_atom(1.5), SurfaceParams::default());
        for p in &q.positions {
            assert!((p.norm() - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn overlapping_pair_loses_buried_points() {
        let mol = Molecule::from_atoms(
            "pair",
            [
                Atom { pos: Vec3::ZERO, radius: 1.7, charge: 0.0, element: Element::C },
                Atom {
                    pos: Vec3::new(1.5, 0.0, 0.0),
                    radius: 1.7,
                    charge: 0.0,
                    element: Element::C,
                },
            ],
        );
        let params = SurfaceParams { icosphere_level: 2, ..Default::default() };
        let q = surface_quadrature(&mol, params);
        let isolated = 2 * params.points_per_atom();
        assert!(q.len() < isolated, "no points were buried");
        // Exposed area strictly between one sphere and two full spheres.
        let one = 4.0 * std::f64::consts::PI * 1.7 * 1.7;
        assert!(q.total_weight() > one);
        assert!(q.total_weight() < 2.0 * one);
        // Every survivor is outside the other atom.
        for (k, p) in q.positions.iter().enumerate() {
            let other = 1 - q.source_atom[k] as usize;
            assert!(p.dist(mol.positions[other]) >= 1.7 - 1e-6);
        }
    }

    #[test]
    fn distant_pair_keeps_everything() {
        let mol = Molecule::from_atoms(
            "far",
            [
                Atom { pos: Vec3::ZERO, radius: 1.5, charge: 0.0, element: Element::C },
                Atom {
                    pos: Vec3::new(50.0, 0.0, 0.0),
                    radius: 1.5,
                    charge: 0.0,
                    element: Element::C,
                },
            ],
        );
        let q = surface_quadrature(&mol, SurfaceParams::default());
        assert_eq!(q.len(), 2 * SurfaceParams::default().points_per_atom());
    }

    #[test]
    fn probe_radius_inflates_the_surface() {
        let q0 = surface_quadrature(&single_atom(1.5), SurfaceParams::default());
        let q1 = surface_quadrature(
            &single_atom(1.5),
            SurfaceParams { probe_radius: 1.4, ..Default::default() },
        );
        assert!(q1.total_weight() > q0.total_weight());
        let want = 4.0 * std::f64::consts::PI * 2.9 * 2.9;
        assert!((q1.total_weight() - want).abs() < 1e-9 * want);
    }

    #[test]
    fn protein_surface_scales_sublinearly_with_atoms() {
        // Buried interior atoms contribute nothing: q-points per atom must
        // drop below the isolated-atom count.
        let m = synth::protein("p", 1500, 3);
        let q = surface_quadrature(&m, SurfaceParams::default());
        let per_atom = q.len() as f64 / 1500.0;
        let isolated = SurfaceParams::default().points_per_atom() as f64;
        assert!(per_atom < 0.8 * isolated, "per-atom {per_atom} vs isolated {isolated}");
        assert!(!q.is_empty());
    }

    #[test]
    fn higher_level_refines_same_area() {
        let m = single_atom(1.7);
        let a0 = surface_quadrature(&m, SurfaceParams::default()).total_weight();
        let a2 = surface_quadrature(
            &m,
            SurfaceParams { icosphere_level: 2, ..Default::default() },
        )
        .total_weight();
        assert!((a0 - a2).abs() < 1e-9, "normalization makes area level-independent");
    }

    #[test]
    fn memory_accounting_nonzero() {
        let q = surface_quadrature(&single_atom(1.0), SurfaceParams::default());
        assert!(q.memory_bytes() >= q.len() * (24 * 2 + 8 + 4));
    }
}
