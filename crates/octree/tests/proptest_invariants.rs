//! Property-based tests of the octree's structural invariants.

use polaroct_geom::Vec3;
use polaroct_octree::{build, BuildParams};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_for_random_clouds(pts in arb_points(400), cap in 1usize..64) {
        let t = build(&pts, BuildParams { leaf_capacity: cap, ..Default::default() });
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn morton_order_is_a_permutation(pts in arb_points(300)) {
        let t = build(&pts, BuildParams::default());
        let mut order: Vec<u32> = t.point_order.clone();
        order.sort_unstable();
        let expected: Vec<u32> = (0..pts.len() as u32).collect();
        prop_assert_eq!(order, expected);
    }

    #[test]
    fn leaves_partition_exactly(pts in arb_points(300), cap in 1usize..32) {
        let t = build(&pts, BuildParams { leaf_capacity: cap, ..Default::default() });
        let total: usize = t.leaf_ids.iter().map(|&l| t.node(l).len()).sum();
        prop_assert_eq!(total, pts.len());
    }

    #[test]
    fn duplicated_points_never_hang(p in (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), copies in 1usize..200) {
        let pts = vec![Vec3::new(p.0, p.1, p.2); copies];
        let t = build(&pts, BuildParams { leaf_capacity: 2, ..Default::default() });
        prop_assert_eq!(t.len(), copies);
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn partition_leaves_is_exact_cover(pts in arb_points(300), parts in 1usize..16) {
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        let ranges = t.partition_leaves(parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut cursor = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, t.leaf_count());
    }

    #[test]
    fn collinear_and_coplanar_clouds_build(n in 2usize..100, axis in 0usize..3) {
        // Degenerate geometry: all points on a line.
        let pts: Vec<Vec3> = (0..n).map(|i| {
            let v = i as f64 * 0.7;
            match axis { 0 => Vec3::new(v, 0.0, 0.0), 1 => Vec3::new(0.0, v, 0.0), _ => Vec3::new(0.0, 0.0, v) }
        }).collect();
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        prop_assert!(t.check_invariants().is_ok());
    }
}
