//! Property-based tests of the octree's structural invariants, and of
//! the parallel builder's bit-identity to the serial one.

use polaroct_geom::Vec3;
use polaroct_octree::{build, try_build, BuildError, BuildParams, Octree, TreeStats};
use polaroct_sched::WorkStealingPool;
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max_n,
    )
}

/// Clouds biased toward the degenerate shapes the parallel builder must
/// reproduce exactly: duplicates, coincident stacks, colinear runs, and
/// plain random clouds (single-point clouds arise from all arms).
fn degenerate_cloud(kind: usize, base: &[Vec3], site: Vec3, copies: usize, pitch: f64) -> Vec<Vec3> {
    match kind {
        // Random cloud (includes n == 1).
        0 => base.to_vec(),
        // Few distinct sites, many exact duplicates of each.
        1 => {
            let sites = &base[..base.len().min(5)];
            let mut pts = Vec::new();
            for _ in 0..copies {
                pts.extend_from_slice(sites);
            }
            pts
        }
        // Everything coincident.
        2 => vec![site; copies],
        // Colinear along an axis with a random pitch.
        _ => (0..copies)
            .map(|i| {
                let v = i as f64 * pitch;
                match copies % 3 {
                    0 => Vec3::new(v, 0.0, 0.0),
                    1 => Vec3::new(0.0, v, 0.0),
                    _ => Vec3::new(0.0, 0.0, v),
                }
            })
            .collect(),
    }
}

/// Field-by-field bitwise equality (floats compared as bits), plus the
/// digest and derived stats — "equals serial `build()` exactly".
fn assert_trees_identical(serial: &Octree, par: &Octree) {
    prop_assert_eq!(serial.content_digest(), par.content_digest());
    prop_assert_eq!(serial.nodes.len(), par.nodes.len());
    for (a, b) in serial.nodes.iter().zip(&par.nodes) {
        prop_assert_eq!(a.begin, b.begin);
        prop_assert_eq!(a.end, b.end);
        prop_assert_eq!(a.first_child, b.first_child);
        prop_assert_eq!(a.child_count, b.child_count);
        prop_assert_eq!(a.depth, b.depth);
        prop_assert_eq!(a.center.x.to_bits(), b.center.x.to_bits());
        prop_assert_eq!(a.center.y.to_bits(), b.center.y.to_bits());
        prop_assert_eq!(a.center.z.to_bits(), b.center.z.to_bits());
        prop_assert_eq!(a.radius.to_bits(), b.radius.to_bits());
    }
    prop_assert_eq!(serial.points.len(), par.points.len());
    for (a, b) in serial.points.iter().zip(&par.points) {
        prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
        prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
        prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
    }
    prop_assert_eq!(&serial.point_order, &par.point_order);
    prop_assert_eq!(&serial.leaf_ids, &par.leaf_ids);
    prop_assert_eq!(TreeStats::of(serial), TreeStats::of(par));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_for_random_clouds(pts in arb_points(400), cap in 1usize..64) {
        let t = build(&pts, BuildParams { leaf_capacity: cap, ..Default::default() });
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn morton_order_is_a_permutation(pts in arb_points(300)) {
        let t = build(&pts, BuildParams::default());
        let mut order: Vec<u32> = t.point_order.clone();
        order.sort_unstable();
        let expected: Vec<u32> = (0..pts.len() as u32).collect();
        prop_assert_eq!(order, expected);
    }

    #[test]
    fn leaves_partition_exactly(pts in arb_points(300), cap in 1usize..32) {
        let t = build(&pts, BuildParams { leaf_capacity: cap, ..Default::default() });
        let total: usize = t.leaf_ids.iter().map(|&l| t.node(l).len()).sum();
        prop_assert_eq!(total, pts.len());
    }

    #[test]
    fn duplicated_points_never_hang(p in (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), copies in 1usize..200) {
        let pts = vec![Vec3::new(p.0, p.1, p.2); copies];
        let t = build(&pts, BuildParams { leaf_capacity: 2, ..Default::default() });
        prop_assert_eq!(t.len(), copies);
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn partition_leaves_is_exact_cover(pts in arb_points(300), parts in 1usize..16) {
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        let ranges = t.partition_leaves(parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut cursor = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, t.leaf_count());
    }

    #[test]
    fn collinear_and_coplanar_clouds_build(n in 2usize..100, axis in 0usize..3) {
        // Degenerate geometry: all points on a line.
        let pts: Vec<Vec3> = (0..n).map(|i| {
            let v = i as f64 * 0.7;
            match axis { 0 => Vec3::new(v, 0.0, 0.0), 1 => Vec3::new(0.0, v, 0.0), _ => Vec3::new(0.0, 0.0, v) }
        }).collect();
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        prop_assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial(
        kind in 0usize..4,
        base in arb_points(250),
        site in (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0),
        copies in 1usize..100,
        pitch in 0.001f64..2.0,
        cap in 1usize..48,
        max_depth in 0u8..22,
    ) {
        let pts = degenerate_cloud(kind, &base, Vec3::new(site.0, site.1, site.2), copies, pitch);
        let serial_params = BuildParams { leaf_capacity: cap, max_depth, ..Default::default() };
        let serial = build(&pts, serial_params);
        for width in [1usize, 2, 4, 8] {
            let pool = WorkStealingPool::new(width);
            let par = build(&pts, BuildParams { pool: Some(&pool), ..serial_params });
            assert_trees_identical(&serial, &par);
        }
    }
}

#[test]
fn empty_cloud_fails_identically_in_both_modes() {
    let pool = WorkStealingPool::new(4);
    let serial = try_build(&[], BuildParams::default());
    let par = try_build(&[], BuildParams { pool: Some(&pool), ..Default::default() });
    assert_eq!(serial.unwrap_err(), BuildError::EmptyInput);
    assert_eq!(par.unwrap_err(), BuildError::EmptyInput);
}
