//! The linear octree container and its queries.

use crate::node::{Node, NodeId};
use crate::stats::TreeStats;
use polaroct_geom::{Aabb, Transform, Vec3};

/// A Morton-ordered linear octree (see the crate docs for the layout).
#[derive(Clone, Debug)]
pub struct Octree {
    /// Cubical domain the Morton codes were derived from.
    pub domain: Aabb,
    /// Flat node array; `nodes[0]` is the root.
    pub nodes: Vec<Node>,
    /// Point positions in Morton order.
    pub points: Vec<Vec3>,
    /// `point_order[i]` = original index of sorted point `i`.
    pub point_order: Vec<u32>,
    /// Ids of leaves, ascending (== Morton order of their ranges).
    pub leaf_ids: Vec<NodeId>,
}

impl Octree {
    /// The root node.
    #[inline]
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of leaves.
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.leaf_ids.len()
    }

    /// Positions of the points under `node` (dense slice — this is the
    /// cache-friendliness the paper banks on).
    #[inline]
    pub fn points_of(&self, node: &Node) -> &[Vec3] {
        &self.points[node.range()]
    }

    /// FNV-1a digest over the tree's complete content — domain, every
    /// node field (float *bits*, not values), sorted points,
    /// `point_order`, `leaf_ids`. Two trees digest equal iff they are
    /// byte-identical; benches and tests use this to compare the serial
    /// and parallel builders without holding both trees.
    pub fn content_digest(&self) -> u64 {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        fn mix_f64(h: &mut u64, v: f64) {
            mix(h, &v.to_bits().to_le_bytes());
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.domain.min.x,
            self.domain.min.y,
            self.domain.min.z,
            self.domain.max.x,
            self.domain.max.y,
            self.domain.max.z,
        ] {
            mix_f64(&mut h, v);
        }
        for n in &self.nodes {
            mix_f64(&mut h, n.center.x);
            mix_f64(&mut h, n.center.y);
            mix_f64(&mut h, n.center.z);
            mix_f64(&mut h, n.radius);
            mix(&mut h, &n.begin.to_le_bytes());
            mix(&mut h, &n.end.to_le_bytes());
            mix(&mut h, &n.first_child.to_le_bytes());
            mix(&mut h, &[n.child_count, n.depth]);
        }
        for p in &self.points {
            mix_f64(&mut h, p.x);
            mix_f64(&mut h, p.y);
            mix_f64(&mut h, p.z);
        }
        for &o in &self.point_order {
            mix(&mut h, &o.to_le_bytes());
        }
        for &l in &self.leaf_ids {
            mix(&mut h, &l.to_le_bytes());
        }
        h
    }

    /// Permute a per-point payload array (indexed like the *original*
    /// input) into this tree's Morton order, so `payload[i]` lines up with
    /// `self.points[i]`.
    pub fn permute<T: Copy>(&self, original: &[T]) -> Vec<T> {
        // PANIC-OK: precondition assert — payload must be per-point; a mismatch is a caller bug.
        assert_eq!(original.len(), self.len());
        self.point_order.iter().map(|&o| original[o as usize]).collect()
    }

    /// Scatter a Morton-ordered per-point array back to original order.
    pub fn unpermute<T: Copy + Default>(&self, sorted: &[T]) -> Vec<T> {
        // PANIC-OK: precondition assert — payload must be per-point; a mismatch is a caller bug.
        assert_eq!(sorted.len(), self.len());
        let mut out = vec![T::default(); sorted.len()];
        for (i, &o) in self.point_order.iter().enumerate() {
            out[o as usize] = sorted[i];
        }
        out
    }

    /// Apply a rigid transform to the whole tree in O(M + nodes): points
    /// and node centers move; radii and the tree topology are invariant.
    /// This is the paper's §IV.C docking optimization — re-posing a ligand
    /// costs a pass over the arrays instead of an O(M log M) rebuild.
    ///
    /// Note: `domain` is updated to the transformed cube's bounding box;
    /// Morton codes are *not* recomputed (they are only needed at build
    /// time).
    pub fn transform(&mut self, t: &Transform) {
        for p in &mut self.points {
            *p = t.apply_point(*p);
        }
        for n in &mut self.nodes {
            n.center = t.apply_point(n.center);
        }
        // The rotated cube's AABB:
        let corners = [
            self.domain.min,
            Vec3::new(self.domain.max.x, self.domain.min.y, self.domain.min.z),
            Vec3::new(self.domain.min.x, self.domain.max.y, self.domain.min.z),
            Vec3::new(self.domain.min.x, self.domain.min.y, self.domain.max.z),
            Vec3::new(self.domain.max.x, self.domain.max.y, self.domain.min.z),
            Vec3::new(self.domain.max.x, self.domain.min.y, self.domain.max.z),
            Vec3::new(self.domain.min.x, self.domain.max.y, self.domain.max.z),
            self.domain.max,
        ];
        self.domain = Aabb::from_points(corners.iter().map(|&c| t.apply_point(c)));
    }

    /// Visit every node depth-first (pre-order), with its id.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId, &Node)) {
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id as usize];
            f(id, n);
            for c in n.children() {
                stack.push(c);
            }
        }
    }

    /// Split the leaves into `parts` contiguous segments of near-equal
    /// *point* counts (not leaf counts): segment `i` is
    /// `leaf_ids[ranges[i].clone()]`. This is the paper's EXPLICIT STATIC
    /// LOAD BALANCING: "Work is divided evenly among processes. The i-th
    /// process computes ... for the i-th segment of ... leaf nodes".
    ///
    /// Balancing by points rather than leaf count keeps per-rank work even
    /// when leaf occupancy varies.
    pub fn partition_leaves(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        // PANIC-OK: precondition assert — zero partitions is a caller bug.
        assert!(parts >= 1);
        let total: usize = self.leaf_ids.iter().map(|&l| self.nodes[l as usize].len()).sum();
        let mut ranges = Vec::with_capacity(parts);
        let mut begin = 0usize;
        let mut acc = 0usize;
        let mut assigned = 0usize;
        for (i, &lid) in self.leaf_ids.iter().enumerate() {
            acc += self.nodes[lid as usize].len();
            // Close the current segment once it reaches its fair share of
            // the remaining points.
            let remaining_parts = parts - ranges.len();
            let target = (total - assigned).div_ceil(remaining_parts);
            if acc >= target && ranges.len() < parts - 1 {
                ranges.push(begin..i + 1);
                begin = i + 1;
                assigned += acc;
                acc = 0;
            }
        }
        ranges.push(begin..self.leaf_ids.len());
        while ranges.len() < parts {
            // More parts than leaves: pad with empty segments.
            let end = self.leaf_ids.len();
            ranges.push(end..end);
        }
        ranges
    }

    /// Split the *points* (atoms) into `parts` near-equal contiguous index
    /// segments — the ATOM-BASED work division of §IV.A.
    pub fn partition_points(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        // PANIC-OK: precondition assert — zero partitions is a caller bug.
        assert!(parts >= 1);
        let n = self.len();
        (0..parts)
            .map(|i| {
                let b = i * n / parts;
                let e = (i + 1) * n / parts;
                b..e
            })
            .collect()
    }

    /// Inflate every node's bounding-sphere radius by `margin` (a
    /// Verlet-style skin). Classification decisions made against the
    /// inflated radii stay conservative while no point has moved more
    /// than `margin / 2` from where the tree was built: for any two
    /// nodes whose *inflated* spheres pass a separation test, the true
    /// current spheres still pass it after both sides drift by up to
    /// `margin / 2` each. Topology, centers and point order are
    /// untouched, so `check_invariants` still holds (containment only
    /// loosens). No-op for `margin == 0` at the bit level: `r + 0.0 == r`
    /// for the non-negative radii a build produces.
    pub fn inflate_radii(&mut self, margin: f64) {
        for n in &mut self.nodes {
            n.radius += margin;
        }
    }

    /// Largest distance from `id`'s center to any point it contains
    /// (its tight bounding radius right now, as opposed to the stored
    /// `radius`, which is build-time and possibly inflated). Used to
    /// audit how much slack a skin margin actually leaves.
    pub fn max_extent(&self, id: NodeId) -> f64 {
        let n = self.node(id);
        let mut m = 0.0f64;
        for i in n.range() {
            m = m.max(n.center.dist(self.points[i]));
        }
        m
    }

    /// Overwrite the Morton-ordered point copies from original-order
    /// positions, leaving topology, centers, radii and `point_order`
    /// untouched. This is the positions-only refresh used on Verlet-skin
    /// reuse: while every point stays within `skin / 2` of the build
    /// geometry, the (inflated) node bounds remain valid for the new
    /// coordinates, so only the leaf payloads need rewriting.
    pub fn refresh_positions(&mut self, original: &[Vec3]) {
        assert!(original.len() == self.points.len());
        for (p, &o) in self.points.iter_mut().zip(&self.point_order) {
            *p = original[o as usize];
        }
    }

    /// Heap bytes held by the tree (§V.B memory accounting).
    /// Capacity-based: reserved-but-unused `Vec` space is resident too,
    /// so counting only `len` would under-report the replicated footprint.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.points.capacity() * std::mem::size_of::<Vec3>()
            + self.point_order.capacity() * std::mem::size_of::<u32>()
            + self.leaf_ids.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Structural statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats::of(self)
    }

    /// Verify structural invariants (used by tests and debug builds):
    /// children partition parents, spheres contain points, leaf list is
    /// exact. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("no nodes".into());
        }
        let root = self.root();
        if root.begin != 0 || root.end as usize != self.len() {
            return Err("root does not cover all points".into());
        }
        for (id, n) in self.nodes.iter().enumerate() {
            if n.begin > n.end || n.end as usize > self.len() {
                return Err(format!("node {id}: bad range"));
            }
            if !n.is_leaf() {
                let mut cursor = n.begin;
                for cid in n.children() {
                    let c = self
                        .nodes
                        .get(cid as usize)
                        .ok_or_else(|| format!("node {id}: child {cid} out of bounds"))?;
                    if c.begin != cursor {
                        return Err(format!("node {id}: children not contiguous"));
                    }
                    if c.depth != n.depth + 1 {
                        return Err(format!("node {id}: child depth mismatch"));
                    }
                    cursor = c.end;
                }
                if cursor != n.end {
                    return Err(format!("node {id}: children do not cover range"));
                }
            }
            for i in n.range() {
                if n.center.dist(self.points[i]) > n.radius + 1e-9 {
                    return Err(format!("node {id}: point {i} outside sphere"));
                }
            }
        }
        let leaves: Vec<NodeId> = (0..self.nodes.len() as NodeId)
            .filter(|&i| self.nodes[i as usize].is_leaf())
            .collect();
        if leaves != self.leaf_ids {
            return Err("leaf_ids out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use polaroct_geom::transform::Rotation;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 30.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn tree(n: usize, seed: u64, cap: usize) -> Octree {
        build(&cloud(n, seed), BuildParams { leaf_capacity: cap, ..Default::default() })
    }

    #[test]
    fn invariants_hold_for_various_sizes() {
        for (n, cap) in [(1usize, 8usize), (10, 2), (500, 8), (3000, 32)] {
            let t = tree(n, n as u64, cap);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn permute_unpermute_roundtrip() {
        let pts = cloud(300, 5);
        let t = build(&pts, BuildParams::default());
        let payload: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let sorted = t.permute(&payload);
        let back = t.unpermute(&sorted);
        assert_eq!(back, payload);
        // sorted payload lines up with sorted points
        for (i, &s) in sorted.iter().enumerate() {
            assert_eq!(s as usize, t.point_order[i] as usize);
        }
    }

    #[test]
    fn transform_preserves_topology_and_radii() {
        let mut t = tree(1000, 9, 16);
        let radii: Vec<f64> = t.nodes.iter().map(|n| n.radius).collect();
        let tr = Transform::about_pivot(
            Rotation::about_axis(Vec3::new(1.0, 1.0, 0.0), 1.1),
            Vec3::splat(15.0),
            Vec3::new(50.0, -10.0, 3.0),
        );
        t.transform(&tr);
        // Topology identical, radii identical, invariants still hold.
        let radii2: Vec<f64> = t.nodes.iter().map(|n| n.radius).collect();
        assert_eq!(radii, radii2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn partition_leaves_covers_all_exactly_once() {
        let t = tree(2000, 21, 16);
        for parts in [1usize, 2, 3, 7, 12, 64] {
            let ranges = t.partition_leaves(parts);
            assert_eq!(ranges.len(), parts);
            let mut cursor = 0usize;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, t.leaf_count());
        }
    }

    #[test]
    fn partition_leaves_balances_points() {
        let t = tree(4000, 33, 16);
        let parts = 8;
        let ranges = t.partition_leaves(parts);
        let loads: Vec<usize> = ranges
            .iter()
            .map(|r| t.leaf_ids[r.clone()].iter().map(|&l| t.node(l).len()).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let avg = 4000 / parts;
        assert!(max < 2 * avg, "imbalanced: {loads:?}");
    }

    #[test]
    fn partition_points_is_even() {
        let t = tree(1001, 2, 16);
        let parts = t.partition_points(4);
        let sizes: Vec<usize> = parts.iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1001);
        assert!(sizes.iter().all(|&s| s == 250 || s == 251));
    }

    #[test]
    fn more_parts_than_leaves_pads_empty() {
        let t = tree(5, 3, 8); // single leaf
        let ranges = t.partition_leaves(4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..1);
        assert!(ranges[1..].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn inflate_radii_keeps_invariants_and_zero_is_identity() {
        let t0 = tree(800, 11, 16);
        let mut t = t0.clone();
        t.inflate_radii(0.0);
        assert_eq!(t.content_digest(), t0.content_digest(), "zero skin must be a bit-level no-op");
        t.inflate_radii(1.5);
        t.check_invariants().unwrap();
        for (n, n0) in t.nodes.iter().zip(&t0.nodes) {
            assert_eq!(n.radius, n0.radius + 1.5);
            assert_eq!(n.center, n0.center);
        }
    }

    #[test]
    fn max_extent_is_within_stored_radius() {
        let mut t = tree(600, 17, 8);
        for &lid in &t.leaf_ids.clone() {
            let ext = t.max_extent(lid);
            assert!(ext <= t.node(lid).radius + 1e-9);
        }
        // After inflation the slack is at least the margin.
        let margin = 2.0;
        t.inflate_radii(margin);
        for &lid in &t.leaf_ids.clone() {
            let ext = t.max_extent(lid);
            assert!(t.node(lid).radius - ext >= margin - 1e-9);
        }
    }

    #[test]
    fn refresh_positions_repermutes_and_preserves_topology() {
        let t0 = tree(500, 21, 16);
        let mut t = t0.clone();
        // Reconstruct original-order positions, shift them, refresh.
        let mut original = vec![polaroct_geom::Vec3::ZERO; t.len()];
        for (i, &o) in t.point_order.iter().enumerate() {
            original[o as usize] = t.points[i];
        }
        let shifted: Vec<_> = original
            .iter()
            .map(|p| *p + polaroct_geom::Vec3::new(0.1, -0.2, 0.05))
            .collect();
        t.refresh_positions(&shifted);
        for (i, &o) in t.point_order.iter().enumerate() {
            assert_eq!(t.points[i], shifted[o as usize]);
        }
        assert_eq!(t.point_order, t0.point_order);
        assert_eq!(t.nodes.len(), t0.nodes.len());
        // Refreshing back with the untouched originals is a bit-level
        // round trip to the build state.
        t.refresh_positions(&original);
        assert_eq!(t.content_digest(), t0.content_digest());
    }

    #[test]
    fn memory_is_linear() {
        let t1 = tree(1000, 4, 16);
        let t2 = tree(4000, 4, 16);
        let ratio = t2.memory_bytes() as f64 / t1.memory_bytes() as f64;
        assert!(ratio < 5.0, "memory ratio {ratio}");
    }

    #[test]
    fn for_each_node_visits_every_node_once() {
        let t = tree(700, 8, 8);
        let mut seen = vec![0u32; t.nodes.len()];
        t.for_each_node(|id, _| seen[id as usize] += 1);
        assert!(seen.iter().all(|&c| c == 1));
    }
}
