//! Octree node record.

use polaroct_geom::Vec3;

/// Index of a node within [`crate::Octree::nodes`].
pub type NodeId = u32;

/// Sentinel for "no children" in [`Node::first_child`].
pub const NO_CHILD: NodeId = u32::MAX;

/// One octree node.
///
/// 48 bytes, stored in a flat array; children of a node are contiguous
/// (`first_child .. first_child + child_count`), and every node owns the
/// contiguous Morton-sorted point range `begin..end`.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Geometric center (centroid) of the points under this node — the
    /// position of the paper's "pseudo-atom"/"pseudo q-point" for far-field
    /// approximation.
    pub center: Vec3,
    /// Radius of the ball centered at `center` enclosing all points under
    /// the node (the `r_A`/`r_Q` of Fig. 2/3's acceptance tests).
    pub radius: f64,
    /// Start of the point range (index into the Morton-sorted arrays).
    pub begin: u32,
    /// One past the end of the point range.
    pub end: u32,
    /// Index of the first child in the node array, or [`NO_CHILD`].
    pub first_child: NodeId,
    /// Number of children (0..=8). Zero means leaf.
    pub child_count: u8,
    /// Depth below the root (root = 0).
    pub depth: u8,
}

impl Node {
    /// Number of points under this node.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.begin) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// True when the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.child_count == 0
    }

    /// Ids of this node's children.
    #[inline]
    pub fn children(&self) -> std::ops::Range<NodeId> {
        if self.is_leaf() {
            self.first_child..self.first_child // empty
        } else {
            self.first_child..self.first_child + self.child_count as NodeId
        }
    }

    /// Point range as `usize` for slicing.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.begin as usize..self.end as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Node {
        Node {
            center: Vec3::ZERO,
            radius: 1.0,
            begin: 4,
            end: 9,
            first_child: NO_CHILD,
            child_count: 0,
            depth: 3,
        }
    }

    #[test]
    fn leaf_predicates() {
        let n = leaf();
        assert!(n.is_leaf());
        assert_eq!(n.len(), 5);
        assert!(!n.is_empty());
        assert_eq!(n.children().count(), 0);
        assert_eq!(n.range(), 4..9);
    }

    #[test]
    fn internal_children_range() {
        let mut n = leaf();
        n.first_child = 10;
        n.child_count = 3;
        assert!(!n.is_leaf());
        let kids: Vec<NodeId> = n.children().collect();
        assert_eq!(kids, vec![10, 11, 12]);
    }

    #[test]
    fn node_is_compact() {
        // Cache-friendliness claim depends on node size staying small.
        assert!(std::mem::size_of::<Node>() <= 56);
    }
}
