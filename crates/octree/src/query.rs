//! Spatial queries over the linear octree.
//!
//! The energy kernels use their own fused traversals; these general
//! queries serve the tooling around them — clash detection in the docking
//! example, neighborhood analyses, and tests that cross-check the
//! kernels' traversal pruning against a reference implementation.

use crate::node::NodeId;
use crate::tree::Octree;
use polaroct_geom::Vec3;

impl Octree {
    /// Indices (in Morton order) of all points within `radius` of `center`.
    ///
    /// Prunes subtrees whose bounding sphere cannot intersect the query
    /// ball; `O(log M + k)` for well-separated data.
    pub fn range_query(&self, center: Vec3, radius: f64) -> Vec<u32> {
        assert!(radius >= 0.0);
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            let d = n.center.dist(center);
            if d > n.radius + radius {
                continue; // disjoint
            }
            if d + n.radius <= radius {
                // Node fully inside the ball: take the whole range.
                out.extend(n.begin..n.end);
                continue;
            }
            if n.is_leaf() {
                for i in n.range() {
                    if self.points[i].dist2(center) <= r2 {
                        out.push(i as u32);
                    }
                }
            } else {
                stack.extend(n.children());
            }
        }
        out
    }

    /// Index (Morton order) and distance of the point nearest to `q`.
    /// Branch-and-bound descent; returns `None` for an empty tree.
    pub fn nearest(&self, q: Vec3) -> Option<(u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best = (u32::MAX, f64::INFINITY);
        // Stack of (node, lower bound on distance).
        let mut stack: Vec<(NodeId, f64)> = vec![(0, 0.0)];
        while let Some((id, bound)) = stack.pop() {
            if bound >= best.1 {
                continue;
            }
            let n = self.node(id);
            if n.is_leaf() {
                for i in n.range() {
                    let d = self.points[i].dist(q);
                    if d < best.1 {
                        best = (i as u32, d);
                    }
                }
                continue;
            }
            // Visit children nearest-first (push farthest first).
            let mut kids: Vec<(NodeId, f64)> = n
                .children()
                .map(|c| {
                    let k = self.node(c);
                    (c, (k.center.dist(q) - k.radius).max(0.0))
                })
                .collect();
            kids.sort_by(|a, b| b.1.total_cmp(&a.1));
            stack.extend(kids);
        }
        Some(best)
    }

    /// Do any two points of `self` and `other` come within `dist`?
    /// Dual-tree descent with sphere pruning — used for pose clash checks.
    pub fn intersects_within(&self, other: &Octree, dist: f64) -> bool {
        let mut stack: Vec<(NodeId, NodeId)> = vec![(0, 0)];
        let d2 = dist * dist;
        while let Some((a_id, b_id)) = stack.pop() {
            let a = self.node(a_id);
            let b = other.node(b_id);
            let gap = a.center.dist(b.center) - a.radius - b.radius;
            if gap > dist {
                continue;
            }
            match (a.is_leaf(), b.is_leaf()) {
                (true, true) => {
                    for i in a.range() {
                        for j in b.range() {
                            if self.points[i].dist2(other.points[j]) <= d2 {
                                return true;
                            }
                        }
                    }
                }
                (true, false) => stack.extend(b.children().map(|c| (a_id, c))),
                (false, true) => stack.extend(a.children().map(|c| (c, b_id))),
                (false, false) => {
                    if a.radius >= b.radius {
                        stack.extend(a.children().map(|c| (c, b_id)));
                    } else {
                        stack.extend(b.children().map(|c| (a_id, c)));
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{build, BuildParams};
    use polaroct_geom::Vec3;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 50.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts = cloud(800, 3);
        let t = build(&pts, BuildParams { leaf_capacity: 8, ..Default::default() });
        for (qc, qr) in [(Vec3::splat(25.0), 10.0), (Vec3::splat(0.0), 5.0), (Vec3::splat(25.0), 100.0)] {
            let mut got = t.range_query(qc, qr);
            got.sort_unstable();
            let mut brute: Vec<u32> = (0..t.len() as u32)
                .filter(|&i| t.points[i as usize].dist(qc) <= qr)
                .collect();
            brute.sort_unstable();
            assert_eq!(got, brute, "query {qc:?} r={qr}");
        }
    }

    #[test]
    fn range_query_zero_radius() {
        let pts = cloud(100, 5);
        let t = build(&pts, BuildParams::default());
        let hits = t.range_query(t.points[17], 0.0);
        assert!(hits.contains(&17));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(600, 7);
        let t = build(&pts, BuildParams { leaf_capacity: 16, ..Default::default() });
        for q in [Vec3::splat(1.0), Vec3::splat(49.0), Vec3::new(-10.0, 25.0, 70.0)] {
            let (gi, gd) = t.nearest(q).unwrap();
            let (bi, bd) = (0..t.len())
                .map(|i| (i, t.points[i].dist(q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((gd - bd).abs() < 1e-12, "dist {gd} vs {bd}");
            // Ties can differ in index; distances must match.
            let _ = (gi, bi);
        }
    }

    #[test]
    fn intersects_within_detects_contact_and_separation() {
        let a = build(&cloud(200, 9), BuildParams::default());
        // Same cloud shifted far away: disjoint at small dist.
        let far: Vec<Vec3> = a.points.iter().map(|&p| p + Vec3::splat(500.0)).collect();
        let tf = build(&far, BuildParams::default());
        assert!(!a.intersects_within(&tf, 10.0));
        // Shifted slightly: overlapping.
        let near: Vec<Vec3> = a.points.iter().map(|&p| p + Vec3::splat(0.5)).collect();
        let tn = build(&near, BuildParams::default());
        assert!(a.intersects_within(&tn, 1.0));
        // Exact threshold sanity: barely touching at the shift distance.
        assert!(a.intersects_within(&tf, 900.0));
    }
}
