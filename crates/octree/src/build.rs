//! Octree construction: Morton sort + recursive range splitting.
//!
//! `O(M log M)` total (the sort dominates), matching the paper's Step-1
//! cost analysis. The recursion never copies points: each node is carved
//! out of the sorted array by binary-searching octant boundaries in the
//! Morton codes.
//!
//! Construction comes in two flavors with **bit-identical** output: the
//! serial path below, and [`crate::parallel`] (selected by
//! [`BuildParams::pool`]), which runs Morton encoding, the sort, and
//! subtree emission on a work-stealing pool. Identity holds because the
//! sort key `(code, original index)` is a total order (unique result)
//! and the node array layout is a pure function of the sorted codes
//! (DESIGN.md §10).

use crate::node::{Node, NodeId, NO_CHILD};
use crate::tree::Octree;
use polaroct_geom::morton::{self, MortonQuantizer};
use polaroct_geom::{Aabb, Vec3};
use polaroct_sched::WorkStealingPool;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct BuildParams<'p> {
    /// Maximum points per leaf. The paper's kernels do exact `O(|A|·|Q|)`
    /// work at leaf pairs, so this bounds the exact-interaction tile size.
    pub leaf_capacity: usize,
    /// Hard depth cap (21 = Morton resolution). Points sharing a Morton
    /// cell can never be separated, so a leaf may exceed `leaf_capacity`
    /// at this depth.
    pub max_depth: u8,
    /// Padding added around the point cloud when the cubical domain is
    /// derived (Å). Avoids boundary-cell degeneracies.
    pub domain_pad: f64,
    /// When set, construction runs on this pool ([`crate::parallel`]);
    /// the output is byte-identical to the serial builder at any pool
    /// width, so this is a pure performance knob.
    pub pool: Option<&'p WorkStealingPool>,
}

impl Default for BuildParams<'_> {
    fn default() -> Self {
        BuildParams { leaf_capacity: 32, max_depth: 21, domain_pad: 1.0, pool: None }
    }
}

/// Why a build request was rejected (before any work happened).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// An octree needs at least one point.
    EmptyInput,
    /// `leaf_capacity` must be at least 1.
    ZeroLeafCapacity,
    /// `max_depth` exceeds the Morton resolution
    /// ([`morton::BITS_PER_AXIS`]); deeper levels cannot separate points.
    DepthExceedsMortonResolution {
        /// The offending requested depth.
        max_depth: u8,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyInput => write!(f, "cannot build an octree over zero points"),
            BuildError::ZeroLeafCapacity => write!(f, "leaf_capacity must be >= 1"),
            BuildError::DepthExceedsMortonResolution { max_depth } => write!(
                f,
                "max_depth {} exceeds the Morton resolution of {} bits per axis",
                max_depth,
                morton::BITS_PER_AXIS
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Build an octree over `points`, panicking on invalid parameters (the
/// historical infallible entry point; use [`try_build`] to handle
/// parameter errors as values).
///
/// Returns an [`Octree`] whose `points` are a Morton-sorted copy;
/// `point_order[i]` is the index in the *original* slice of sorted point
/// `i`, so callers can permute per-point payloads to match.
pub fn build(points: &[Vec3], params: BuildParams<'_>) -> Octree {
    match try_build(points, params) {
        Ok(tree) => tree,
        // Fallible callers use `try_build` instead.
        // PANIC-OK: invalid build parameters are caller bugs at this infallible entry point.
        Err(e) => panic!("octree build: {e}"),
    }
}

/// Build an octree over `points`, rejecting invalid parameters as a
/// [`BuildError`] instead of panicking.
pub fn try_build(points: &[Vec3], params: BuildParams<'_>) -> Result<Octree, BuildError> {
    if points.is_empty() {
        return Err(BuildError::EmptyInput);
    }
    if params.leaf_capacity < 1 {
        return Err(BuildError::ZeroLeafCapacity);
    }
    if params.max_depth as u32 > morton::BITS_PER_AXIS {
        return Err(BuildError::DepthExceedsMortonResolution { max_depth: params.max_depth });
    }
    Ok(match params.pool {
        Some(pool) => crate::parallel::build_parallel(points, &params, pool),
        None => build_serial(points, &params),
    })
}

/// Derive the cubical Morton domain and its quantizer from the cloud.
/// Order-insensitive over `points` (min/max folds), so serial and
/// parallel builders can share it verbatim.
pub(crate) fn domain_and_quantizer(points: &[Vec3], pad: f64) -> (Aabb, MortonQuantizer) {
    let tight = Aabb::from_points(points.iter().copied());
    let domain = Aabb::cube_containing(tight, pad);
    let quant = MortonQuantizer::new(&domain);
    (domain, quant)
}

/// The split predicate shared (verbatim) by the serial DFS, the parallel
/// frontier scan, and the parallel subtree builder — a node over
/// `sorted_codes[b..e]` at `depth` becomes internal iff this holds.
pub(crate) fn can_split(
    sorted_codes: &[u64],
    b: usize,
    e: usize,
    depth: u8,
    params: &BuildParams<'_>,
) -> bool {
    e - b > params.leaf_capacity
        && depth < params.max_depth
        // All points in the same Morton cell — cannot split further.
        && sorted_codes[b] != sorted_codes[e - 1]
}

/// Visit the non-empty octant runs of `sorted_codes[b..e]` at tree
/// `level` in octant order, calling `emit(lo, hi)` for each run. Both
/// builders derive child ranges exclusively through this function.
pub(crate) fn for_each_octant_run(
    sorted_codes: &[u64],
    b: usize,
    e: usize,
    level: u32,
    mut emit: impl FnMut(usize, usize),
) {
    let mut lo = b;
    while lo < e {
        let oct = morton::child_index_at_level(sorted_codes[lo], level);
        // Binary search the end of this octant's run.
        let hi =
            upper_bound(&sorted_codes[lo..e], |&c| morton::child_index_at_level(c, level) == oct)
                + lo;
        emit(lo, hi);
        lo = hi;
    }
}

fn build_serial(points: &[Vec3], params: &BuildParams<'_>) -> Octree {
    let (domain, quant) = domain_and_quantizer(points, params.domain_pad);

    // Morton-sort the point indices by `(code, original index)` — a
    // total order with a unique result, which is what lets the parallel
    // builder reproduce it bit-for-bit.
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    let codes_by_orig: Vec<u64> = quant.codes_of(points);
    order.sort_unstable_by_key(|&i| (codes_by_orig[i as usize], i));

    let sorted_points: Vec<Vec3> = order.iter().map(|&i| points[i as usize]).collect();
    let sorted_codes: Vec<u64> = order.iter().map(|&i| codes_by_orig[i as usize]).collect();

    let mut nodes: Vec<Node> = Vec::with_capacity(2 * points.len() / params.leaf_capacity + 8);
    nodes.push(make_node(&sorted_points, 0, sorted_points.len() as u32, 0));

    // Iterative DFS split; children of each node are pushed contiguously.
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(id) = stack.pop() {
        let node = nodes[id as usize];
        let (b, e) = (node.begin as usize, node.end as usize);
        if !can_split(&sorted_codes, b, e, node.depth, params) {
            continue; // stays a leaf
        }
        let first_child = nodes.len() as NodeId;
        let mut child_count = 0u8;
        for_each_octant_run(&sorted_codes, b, e, node.depth as u32, |lo, hi| {
            nodes.push(make_node(&sorted_points, lo as u32, hi as u32, node.depth + 1));
            child_count += 1;
        });
        debug_assert!((1..=8).contains(&child_count));
        let m = &mut nodes[id as usize];
        m.first_child = first_child;
        m.child_count = child_count;
        for c in 0..child_count as NodeId {
            stack.push(first_child + c);
        }
    }

    let leaf_ids: Vec<NodeId> = (0..nodes.len() as NodeId)
        .filter(|&i| nodes[i as usize].is_leaf())
        .collect();

    Octree { domain, nodes, points: sorted_points, point_order: order, leaf_ids }
}

/// Number of leading elements of `slice` satisfying `pred` (the slice must
/// be partitioned: all satisfying elements first).
pub(crate) fn upper_bound<T, F: Fn(&T) -> bool>(slice: &[T], pred: F) -> usize {
    let mut lo = 0usize;
    let mut hi = slice.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(&slice[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Materialize the node over `points[begin..end]`: sequential centroid
/// fold, then the max-distance radius. Both builders call this on the
/// same globally-sorted slice, so the float results agree bit-for-bit.
pub(crate) fn make_node(points: &[Vec3], begin: u32, end: u32, depth: u8) -> Node {
    let slice = &points[begin as usize..end as usize];
    let mut c = Vec3::ZERO;
    for &p in slice {
        c += p;
    }
    c = c / slice.len().max(1) as f64;
    let mut r2: f64 = 0.0;
    for &p in slice {
        r2 = r2.max(c.dist2(p));
    }
    Node {
        center: c,
        radius: r2.sqrt(),
        begin,
        end,
        first_child: NO_CHILD,
        child_count: 0,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 40.0 - 20.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn builds_single_point() {
        let t = build(&[Vec3::new(1.0, 2.0, 3.0)], BuildParams::default());
        assert_eq!(t.nodes.len(), 1);
        assert!(t.nodes[0].is_leaf());
        assert_eq!(t.nodes[0].len(), 1);
        assert_eq!(t.nodes[0].radius, 0.0);
    }

    #[test]
    fn duplicate_points_terminate() {
        // 100 identical points exceed any leaf capacity but share a Morton
        // cell; the build must terminate with one (oversized) leaf.
        let pts = vec![Vec3::new(1.0, 1.0, 1.0); 100];
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.nodes[0].len(), 100);
    }

    #[test]
    fn duplicate_codes_sort_by_original_index() {
        // Equal Morton codes must tie-break on the original index — the
        // canonical order both builders reproduce.
        let pts = vec![Vec3::new(2.0, 2.0, 2.0); 7];
        let t = build(&pts, BuildParams::default());
        assert_eq!(t.point_order, (0..7).collect::<Vec<u32>>());
    }

    #[test]
    fn leaves_partition_points() {
        let pts = cloud(2000, 3);
        let t = build(&pts, BuildParams { leaf_capacity: 16, ..Default::default() });
        let mut covered = vec![false; pts.len()];
        for &lid in &t.leaf_ids {
            for i in t.nodes[lid as usize].range() {
                assert!(!covered[i], "point {i} in two leaves");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every point in some leaf");
    }

    #[test]
    fn children_partition_parent_range() {
        let pts = cloud(3000, 7);
        let t = build(&pts, BuildParams { leaf_capacity: 8, ..Default::default() });
        for node in &t.nodes {
            if node.is_leaf() {
                continue;
            }
            let mut cursor = node.begin;
            for cid in node.children() {
                let c = &t.nodes[cid as usize];
                assert_eq!(c.begin, cursor, "children contiguous in range");
                assert_eq!(c.depth, node.depth + 1);
                assert!(!c.is_empty(), "no empty children are materialized");
                cursor = c.end;
            }
            assert_eq!(cursor, node.end, "children cover the parent range");
        }
    }

    #[test]
    fn leaf_capacity_respected_away_from_depth_cap() {
        let pts = cloud(5000, 11);
        let cap = 24;
        let t = build(&pts, BuildParams { leaf_capacity: cap, ..Default::default() });
        for &lid in &t.leaf_ids {
            let n = &t.nodes[lid as usize];
            if (n.depth as u32) < morton::BITS_PER_AXIS {
                assert!(n.len() <= cap, "leaf of {} points at depth {}", n.len(), n.depth);
            }
        }
    }

    #[test]
    fn node_spheres_contain_their_points() {
        let pts = cloud(1500, 13);
        let t = build(&pts, BuildParams::default());
        for node in &t.nodes {
            for i in node.range() {
                let d = node.center.dist(t.points[i]);
                assert!(d <= node.radius + 1e-9);
            }
        }
    }

    #[test]
    fn point_order_is_a_permutation() {
        let pts = cloud(800, 17);
        let t = build(&pts, BuildParams::default());
        let mut seen = vec![false; pts.len()];
        for &o in &t.point_order {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        // And sorted points really are the permuted originals.
        for (i, &o) in t.point_order.iter().enumerate() {
            assert_eq!(t.points[i], pts[o as usize]);
        }
    }

    #[test]
    fn space_is_linear_in_points() {
        // Octree-vs-nblist claim: node count stays O(M / leaf_capacity).
        let pts = cloud(10_000, 23);
        let t = build(&pts, BuildParams { leaf_capacity: 16, ..Default::default() });
        // Every split creates >= 2 non-empty children, so internal nodes
        // <= leaves and leaves <= points: nodes < 2 * points regardless of
        // leaf capacity. (The nblist, by contrast, stores one entry per
        // *pair* within the cutoff.)
        assert!(
            t.nodes.len() < 2 * pts.len(),
            "{} nodes for {} points",
            t.nodes.len(),
            pts.len()
        );
    }

    #[test]
    fn upper_bound_finds_partition_point() {
        let v = [1, 1, 1, 2, 3];
        assert_eq!(upper_bound(&v, |&x| x == 1), 3);
        assert_eq!(upper_bound(&v, |&x| x < 10), 5);
        assert_eq!(upper_bound(&v, |&x| x < 0), 0);
        let empty: [i32; 0] = [];
        assert_eq!(upper_bound(&empty, |_| true), 0);
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let _ = build(&[], BuildParams::default());
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let pts = [Vec3::new(1.0, 2.0, 3.0)];
        assert_eq!(
            try_build(&[], BuildParams::default()).unwrap_err(),
            BuildError::EmptyInput
        );
        assert_eq!(
            try_build(&pts, BuildParams { leaf_capacity: 0, ..Default::default() }).unwrap_err(),
            BuildError::ZeroLeafCapacity
        );
        assert_eq!(
            try_build(&pts, BuildParams { max_depth: 22, ..Default::default() }).unwrap_err(),
            BuildError::DepthExceedsMortonResolution { max_depth: 22 }
        );
        // Display strings are actionable.
        let msg = BuildError::DepthExceedsMortonResolution { max_depth: 22 }.to_string();
        assert!(msg.contains("22") && msg.contains("21"), "{msg}");
        assert!(try_build(&pts, BuildParams::default()).is_ok());
    }
}
