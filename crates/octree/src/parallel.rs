//! Parallel octree construction with **bit-identical** output.
//!
//! Every stage either computes a value that is a pure per-element
//! function of the input (encoding, gathers — chunked over the pool and
//! concatenated in index order) or produces the unique result of a
//! total order (the `(code, index)` radix sort), so no stage's output
//! depends on scheduling. Node emission then exploits the serial
//! builder's layout law (DESIGN.md §10): when the serial DFS pops a
//! node, it emits that node's entire subtree *contiguously* —
//! `[children block] ++ layout(last child) ++ … ++ layout(first child)`
//! — before touching anything deeper on its stack. So a subtree built
//! in isolation (with arena-local child indices) can be spliced into
//! the global array at the position where the serial DFS would have
//! started it, re-based by a constant offset, and match byte-for-byte.
//!
//! Pipeline:
//! 1. pool-mapped Morton encoding (chunk + concatenate);
//! 2. parallel MSB radix sort of `(code, original index)` pairs
//!    ([`polaroct_sched::radix`]);
//! 3. pool-mapped gathers of `point_order`, sorted codes, sorted points;
//! 4. **frontier scan** (serial, ranges only): repeatedly split the
//!    widest splittable range breadth-first until ≥ 8 × pool-width
//!    independent ranges exist — the split rules are shared with the
//!    serial builder ([`build::can_split`] / [`build::for_each_octant_run`]),
//!    so these ranges are exactly nodes the serial DFS would visit;
//! 5. pool-mapped subtree arenas: each frontier range is built with the
//!    serial stack discipline into a private `Vec<Node>`;
//! 6. **splice pass** (serial, cheap): replay the serial DFS; at a
//!    frontier node, append its pre-built arena (child indices re-based
//!    by the splice position) instead of recursing.
//!
//! Which ranges land on the frontier affects only *who* builds each
//! subtree, never the bytes produced — that is what makes the result
//! independent of the pool width.

use crate::build::{self, BuildParams};
use crate::node::{Node, NodeId};
use crate::tree::Octree;
use polaroct_geom::Vec3;
use polaroct_sched::{par_sort_pairs, WorkStealingPool};
use std::collections::HashMap;

/// Frontier fan-out per pool worker: more subtrees than workers lets
/// the work-stealing pool balance unevenly-sized octants.
const SUBTREES_PER_WORKER: usize = 8;

/// A point range at a depth — a node the serial DFS would visit,
/// identified before any node is materialized.
#[derive(Clone, Copy)]
struct Seg {
    b: usize,
    e: usize,
    depth: u8,
}

/// Run `f` over near-even chunks of `0..n` on the pool and concatenate
/// the pieces in index order. Since `f` is a pure function of its
/// range, the result is identical to `f(0, n)` regardless of chunking
/// or scheduling.
fn par_concat<T, F>(pool: &WorkStealingPool, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> Vec<T> + Sync,
{
    let chunks = (pool.width() * 4).clamp(1, n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut lo = 0usize;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    let parts = pool.map(chunks, |c| {
        let (lo, hi) = bounds[c];
        f(lo, hi)
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Build `points` into an octree on `pool`. Parameters are already
/// validated by [`build::try_build`]; `points` is non-empty.
pub(crate) fn build_parallel(
    points: &[Vec3],
    params: &BuildParams<'_>,
    pool: &WorkStealingPool,
) -> Octree {
    let n = points.len();
    let (domain, quant) = build::domain_and_quantizer(points, params.domain_pad);

    // 1. Pool-mapped Morton encoding, paired with original indices.
    let pairs: Vec<(u64, u32)> = par_concat(pool, n, |lo, hi| {
        quant
            .codes_of(&points[lo..hi])
            .into_iter()
            .enumerate()
            .map(|(k, code)| (code, (lo + k) as u32))
            .collect()
    });

    // 2. Parallel radix sort by `(code, original index)` — the same
    // total order as the serial `sort_unstable_by_key`, hence the same
    // unique result.
    let sorted_pairs = par_sort_pairs(pool, &pairs);

    // 3. Pool-mapped gathers.
    let order: Vec<u32> =
        par_concat(pool, n, |lo, hi| sorted_pairs[lo..hi].iter().map(|p| p.1).collect());
    let sorted_codes: Vec<u64> =
        par_concat(pool, n, |lo, hi| sorted_pairs[lo..hi].iter().map(|p| p.0).collect());
    let sorted_points: Vec<Vec3> =
        par_concat(pool, n, |lo, hi| order[lo..hi].iter().map(|&i| points[i as usize]).collect());

    // 4. Frontier scan: split ranges (no node emission) breadth-first,
    // always expanding the widest splittable range, until enough
    // independent subtrees exist to keep the pool busy.
    let target = pool.width() * SUBTREES_PER_WORKER;
    let mut frontier: Vec<Seg> = vec![Seg { b: 0, e: n, depth: 0 }];
    while frontier.len() < target {
        let mut best: Option<usize> = None;
        for (i, s) in frontier.iter().enumerate() {
            if !build::can_split(&sorted_codes, s.b, s.e, s.depth, params) {
                continue;
            }
            let better = match best {
                None => true,
                // (width, begin) is a unique key — ranges are disjoint.
                Some(j) => {
                    let t = frontier[j];
                    (s.e - s.b, s.b) > (t.e - t.b, t.b)
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else { break }; // nothing splittable left
        let s = frontier.swap_remove(i);
        build::for_each_octant_run(&sorted_codes, s.b, s.e, s.depth as u32, |lo, hi| {
            frontier.push(Seg { b: lo, e: hi, depth: s.depth + 1 });
        });
    }

    // Ranges are disjoint per depth and depths differ along chains, so
    // (begin, end, depth) names a node uniquely.
    let frontier_map: HashMap<(u32, u32, u8), usize> = frontier
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.b as u32, s.e as u32, s.depth), i))
        .collect();

    // 5. Pool-mapped subtree arenas.
    let arenas: Vec<(u8, Vec<Node>)> = pool.map(frontier.len(), |i| {
        let s = frontier[i];
        build_subtree(&sorted_points, &sorted_codes, s, params)
    });

    // 6. Splice pass: the serial DFS verbatim, except that popping a
    // frontier node appends its pre-built arena instead of recursing.
    let mut nodes: Vec<Node> = Vec::with_capacity(2 * n / params.leaf_capacity + 8);
    nodes.push(build::make_node(&sorted_points, 0, n as u32, 0));
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(id) = stack.pop() {
        let node = nodes[id as usize];
        if let Some(&fi) = frontier_map.get(&(node.begin, node.end, node.depth)) {
            let (root_children, arena) = &arenas[fi];
            if *root_children == 0 {
                continue; // the whole subtree is this one leaf
            }
            let splice = nodes.len() as NodeId;
            for sub in arena {
                let mut g = *sub;
                if g.child_count > 0 {
                    // Arena-local child indices -> global positions.
                    g.first_child += splice;
                }
                nodes.push(g);
            }
            let m = &mut nodes[id as usize];
            m.first_child = splice;
            m.child_count = *root_children;
            // Push nothing: the arena already holds the full subtree in
            // the exact order the serial DFS would have emitted it.
            continue;
        }
        // Spine node (expanded during the frontier scan): split inline,
        // exactly the serial step.
        let (b, e) = (node.begin as usize, node.end as usize);
        if !build::can_split(&sorted_codes, b, e, node.depth, params) {
            continue;
        }
        let first_child = nodes.len() as NodeId;
        let mut child_count = 0u8;
        build::for_each_octant_run(&sorted_codes, b, e, node.depth as u32, |lo, hi| {
            nodes.push(build::make_node(&sorted_points, lo as u32, hi as u32, node.depth + 1));
            child_count += 1;
        });
        let m = &mut nodes[id as usize];
        m.first_child = first_child;
        m.child_count = child_count;
        for c in 0..child_count as NodeId {
            stack.push(first_child + c);
        }
    }

    let leaf_ids: Vec<NodeId> = (0..nodes.len() as NodeId)
        .filter(|&i| nodes[i as usize].is_leaf())
        .collect();

    Octree { domain, nodes, points: sorted_points, point_order: order, leaf_ids }
}

/// Build the subtree under the node over `seg` into a private arena
/// with arena-local child indices, using the serial stack discipline.
///
/// The frontier node itself is *not* stored (the splice pass patches
/// the already-emitted record); the arena starts with its children
/// block. Returns `(child count of the frontier node, arena)` —
/// `(0, [])` when the range stays a leaf.
fn build_subtree(
    sorted_points: &[Vec3],
    sorted_codes: &[u64],
    seg: Seg,
    params: &BuildParams<'_>,
) -> (u8, Vec<Node>) {
    if !build::can_split(sorted_codes, seg.b, seg.e, seg.depth, params) {
        return (0, Vec::new());
    }
    let mut arena: Vec<Node> = Vec::new();
    let mut root_children = 0u8;
    build::for_each_octant_run(sorted_codes, seg.b, seg.e, seg.depth as u32, |lo, hi| {
        arena.push(build::make_node(sorted_points, lo as u32, hi as u32, seg.depth + 1));
        root_children += 1;
    });
    let mut stack: Vec<NodeId> = (0..root_children as NodeId).collect();
    while let Some(id) = stack.pop() {
        let node = arena[id as usize];
        let (b, e) = (node.begin as usize, node.end as usize);
        if !build::can_split(sorted_codes, b, e, node.depth, params) {
            continue;
        }
        let first_child = arena.len() as NodeId;
        let mut child_count = 0u8;
        build::for_each_octant_run(sorted_codes, b, e, node.depth as u32, |lo, hi| {
            arena.push(build::make_node(sorted_points, lo as u32, hi as u32, node.depth + 1));
            child_count += 1;
        });
        let m = &mut arena[id as usize];
        m.first_child = first_child;
        m.child_count = child_count;
        for c in 0..child_count as NodeId {
            stack.push(first_child + c);
        }
    }
    (root_children, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 40.0 - 20.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn assert_identical(a: &Octree, b: &Octree, what: &str) {
        assert_eq!(a.content_digest(), b.content_digest(), "digest mismatch: {what}");
        // Digest equality is the headline; spot-check the pieces so a
        // failure localizes.
        assert_eq!(a.nodes.len(), b.nodes.len(), "{what}: node count");
        assert_eq!(a.point_order, b.point_order, "{what}: point_order");
        assert_eq!(a.leaf_ids, b.leaf_ids, "{what}: leaf_ids");
        for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            assert_eq!(x.begin, y.begin, "{what}: node {i} begin");
            assert_eq!(x.end, y.end, "{what}: node {i} end");
            assert_eq!(x.first_child, y.first_child, "{what}: node {i} first_child");
            assert_eq!(x.child_count, y.child_count, "{what}: node {i} child_count");
            assert_eq!(x.depth, y.depth, "{what}: node {i} depth");
            assert_eq!(
                x.center.x.to_bits(),
                y.center.x.to_bits(),
                "{what}: node {i} center.x bits"
            );
            assert_eq!(x.radius.to_bits(), y.radius.to_bits(), "{what}: node {i} radius bits");
        }
    }

    #[test]
    fn parallel_matches_serial_across_widths() {
        let pts = cloud(4000, 42);
        let serial = build(&pts, BuildParams { leaf_capacity: 16, ..Default::default() });
        for width in [1, 2, 4, 8] {
            let pool = WorkStealingPool::new(width);
            let par = build(
                &pts,
                BuildParams { leaf_capacity: 16, pool: Some(&pool), ..Default::default() },
            );
            assert_identical(&serial, &par, &format!("width {width}"));
            par.check_invariants().expect("parallel tree passes structural invariants");
        }
    }

    #[test]
    fn parallel_matches_serial_on_degenerate_clouds() {
        let pool = WorkStealingPool::new(4);
        let cases: Vec<(&str, Vec<Vec3>)> = vec![
            ("single point", vec![Vec3::new(1.0, 2.0, 3.0)]),
            ("all coincident", vec![Vec3::new(0.5, 0.5, 0.5); 333]),
            (
                "colinear",
                (0..500).map(|i| Vec3::new(i as f64 * 0.01, 0.0, 0.0)).collect(),
            ),
            (
                "two clusters + duplicates",
                (0..600)
                    .map(|i| {
                        if i % 3 == 0 {
                            Vec3::new(-10.0, -10.0, -10.0)
                        } else {
                            Vec3::new(10.0 + (i % 7) as f64 * 0.1, 10.0, 10.0)
                        }
                    })
                    .collect(),
            ),
        ];
        for (what, pts) in &cases {
            let serial = build(pts, BuildParams { leaf_capacity: 8, ..Default::default() });
            let par = build(
                pts,
                BuildParams { leaf_capacity: 8, pool: Some(&pool), ..Default::default() },
            );
            assert_identical(&serial, &par, what);
        }
    }

    #[test]
    fn parallel_matches_serial_at_shallow_depth_caps() {
        let pts = cloud(2500, 99);
        let pool = WorkStealingPool::new(3);
        for max_depth in [0, 1, 2, 5, 21] {
            let p = BuildParams { leaf_capacity: 4, max_depth, ..Default::default() };
            let serial = build(&pts, p);
            let par = build(&pts, BuildParams { pool: Some(&pool), ..p });
            assert_identical(&serial, &par, &format!("max_depth {max_depth}"));
        }
    }
}
