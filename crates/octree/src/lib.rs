//! # polaroct-octree
//!
//! The cache-efficient octree at the heart of the paper.
//!
//! §II: "An Octree is a tree data structure that recursively and adaptively
//! sub-divides the 3D space into 8 octants ... Octrees are very cache
//! friendly because of their recursive nature. ... an octree uses space
//! linear in the number of data points it holds, and its size does not
//! change with the approximation parameter."
//!
//! This implementation is a **linear octree**: input points are sorted by
//! 63-bit Morton code once, after which every node of the tree corresponds
//! to a *contiguous range* of the sorted array. Nodes are stored in a flat
//! `Vec<Node>` in depth-first order with contiguous children. Consequences:
//!
//! * **O(M) space, independent of ε** — the paper's key advantage over
//!   nonbonded lists, whose size grows cubically with the cutoff.
//! * **Cache-friendly traversal** — a leaf's points are a dense slice; a
//!   node's children are adjacent in memory.
//! * **Build once, reuse for any ε** (§IV.C step 1: octree construction is
//!   a pre-processing cost) and **rigid-body reuse**: [`Octree::transform`]
//!   re-poses the whole tree in O(M) without rebuilding, which is what
//!   makes ligand pose scans cheap.
//!
//! The same structure stores atoms (`T_A`) and surface quadrature points
//! (`T_Q`); per-point payloads (charges, radii, normals, weights) live in
//! the caller's arrays, permuted into Morton order via
//! [`Octree::point_order`].

#![forbid(unsafe_code)]

pub mod build;
pub mod node;
pub mod parallel;
pub mod query;
pub mod stats;
pub mod tree;

pub use build::{build, try_build, BuildError, BuildParams};
pub use node::{Node, NodeId, NO_CHILD};
pub use stats::TreeStats;
pub use tree::Octree;
