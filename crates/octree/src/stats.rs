//! Structural statistics for octrees (reported by benches and DESIGN
//! ablations).

use crate::tree::Octree;

/// Summary of an octree's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    pub points: usize,
    pub nodes: usize,
    pub leaves: usize,
    pub max_depth: u8,
    /// Mean points per leaf.
    pub mean_leaf_occupancy: f64,
    /// Largest leaf (can exceed leaf capacity only at the depth cap).
    pub max_leaf_occupancy: usize,
    /// Heap bytes.
    pub memory_bytes: usize,
}

impl TreeStats {
    pub fn of(tree: &Octree) -> TreeStats {
        let mut max_depth = 0u8;
        for n in &tree.nodes {
            max_depth = max_depth.max(n.depth);
        }
        let leaf_sizes: Vec<usize> =
            tree.leaf_ids.iter().map(|&l| tree.node(l).len()).collect();
        let leaves = leaf_sizes.len();
        TreeStats {
            points: tree.len(),
            nodes: tree.nodes.len(),
            leaves,
            max_depth,
            mean_leaf_occupancy: tree.len() as f64 / leaves.max(1) as f64,
            max_leaf_occupancy: leaf_sizes.iter().copied().max().unwrap_or(0),
            memory_bytes: tree.memory_bytes(),
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "points={} nodes={} leaves={} max_depth={} mean_leaf={:.1} max_leaf={} mem={}B",
            self.points,
            self.nodes,
            self.leaves,
            self.max_depth,
            self.mean_leaf_occupancy,
            self.max_leaf_occupancy,
            self.memory_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{build, BuildParams};
    use polaroct_geom::Vec3;

    #[test]
    fn stats_of_single_leaf() {
        let t = build(&[Vec3::ZERO, Vec3::X], BuildParams::default());
        let s = t.stats();
        assert_eq!(s.points, 2);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.mean_leaf_occupancy, 2.0);
    }

    #[test]
    fn stats_track_depth() {
        let pts: Vec<Vec3> = (0..256)
            .map(|i| Vec3::new((i % 16) as f64, (i / 16) as f64, 0.0))
            .collect();
        let t = build(&pts, BuildParams { leaf_capacity: 4, ..Default::default() });
        let s = t.stats();
        assert!(s.max_depth >= 2);
        assert!(s.max_leaf_occupancy <= 4);
        assert_eq!(s.points, 256);
    }

    #[test]
    fn display_is_one_line() {
        let t = build(&[Vec3::ZERO], BuildParams::default());
        let line = t.stats().to_string();
        assert!(line.contains("points=1"));
        assert!(!line.contains('\n'));
    }
}
