//! Offline shim for `criterion`.
//!
//! Gives the workspace's benches the API they compile against
//! (`Criterion`, groups, `BenchmarkId`, `Throughput`, `black_box`,
//! `criterion_group!` / `criterion_main!`) with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery:
//! each benchmark warms up once, then runs batches until ~50 ms of
//! samples accumulate and reports the mean time per iteration.
//!
//! Under `cargo test` (criterion benches are invoked with `--test`),
//! every benchmark body runs exactly once as a smoke test, matching
//! upstream's behavior.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when the binary runs as a `cargo test` smoke pass.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Measurement loop: returns mean seconds per iteration.
fn measure<F: FnMut()>(mut routine: F) -> f64 {
    routine(); // warm-up
    let budget = Duration::from_millis(50);
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        routine();
        iters += 1;
        if start.elapsed() >= budget || iters >= 100_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn report(path: &str, secs: f64) {
    let human = if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    };
    println!("bench: {path:<50} {human}/iter");
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mean_secs: Option<f64>,
}

impl Bencher {
    /// Benchmark a routine (the shim times the whole closure).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if test_mode() {
            black_box(routine());
            self.mean_secs = Some(0.0);
            return;
        }
        self.mean_secs = Some(measure(|| {
            black_box(routine());
        }));
    }

    /// Benchmark a routine with a per-iteration setup step. The shim
    /// times setup + routine together (upstream excludes setup; good
    /// enough for the smoke/regression role these benches play here).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput annotation (accepted, not reported by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_secs: None };
        f(&mut b);
        if let Some(s) = b.mean_secs {
            if !test_mode() {
                report(&format!("{}/{}", self.name, id), s);
            }
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_secs: None };
        f(&mut b, input);
        if let Some(s) = b.mean_secs {
            if !test_mode() {
                report(&format!("{}/{}", self.name, id.id), s);
            }
        }
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_secs: None };
        f(&mut b);
        if let Some(s) = b.mean_secs {
            if !test_mode() {
                report(id, s);
            }
        }
        self
    }
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Define `main` to run one or more criterion groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| black_box(1) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_api_compiles_and_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
