//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   re-panics; minimization is left to the reader.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (FNV-1a) and the case index, so failures reproduce exactly
//!   across runs and machines. Set `PROPTEST_SEED=<u64>` to perturb the
//!   whole suite.

#![forbid(unsafe_code)]

use rand::SeedableRng;

/// The RNG strategies draw from.
pub type TestRng = rand_chacha::ChaCha8Rng;

pub mod test_runner {
    /// Subset of upstream's config: only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values (upstream's trait, minus shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// `vec(element, len_range)` — a `Vec` with uniformly chosen length.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a deterministic per-test seed (FNV-1a of the test path, mixed
/// with `PROPTEST_SEED` when set).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ env
}

/// Make a [`TestRng`] for one case of one test.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x9E37))
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Upstream's `prelude::prop` namespace.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test macro. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng_for(__test_path, __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                // Describe inputs eagerly so a panicking case can report
                // them (no shrinking — reproduce via the printed seed).
                let mut __inputs = String::new();
                $(
                    __inputs.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($arg),
                        &$arg
                    ));
                )*
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n{}",
                        __test_path,
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.5f64..2.5, n in 3usize..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn tuples_and_map(p in (0i32..10, 0i32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&p));
        }
    }

    #[test]
    fn seeds_are_stable_and_name_sensitive() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
