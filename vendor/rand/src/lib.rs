//! Offline shim for `rand` 0.8.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open
//! ranges of `f64` and the integer types — with no external dependencies.
//! Generators live in the `rand_chacha` shim (and any in-tree impl of
//! [`RngCore`]). Sequences are deterministic per seed but do **not**
//! bit-match upstream rand's output; nothing in-tree pins upstream
//! sequences (the seed repo never built offline, so no recorded results
//! depend on them).

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core source of randomness: 32/64-bit uniform words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction from seeds. Only `seed_from_u64` is exercised in-tree;
/// `from_seed` is the required constructor it derives from.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit state into a full seed via SplitMix64 (the same
    /// construction upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let w = sm.next_u64().to_le_bytes();
            let take = (bytes.len() - i).min(8);
            bytes[i..i + take].copy_from_slice(&w[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander and a perfectly serviceable small PRNG.
pub struct SplitMix64 {
    pub state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.end - (range.end - range.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); span << 2^64 in-tree so
                // the rejection loop terminates essentially immediately.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= (u64::MAX - span + 1) % span {
                        return range.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let off = u64::sample_range(rng, 0..span);
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i64 => u64, i32 => u32, isize => usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        f64::sample_range(self, 0.0..1.0)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = SplitMix64 { state: 7 };
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn usize_range_hits_all_values() {
        let mut rng = SplitMix64 { state: 1 };
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64 { state: 42 };
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64 { state: 42 };
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SplitMix64 { state: 3 };
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn tiny_f64_range_stays_half_open() {
        let mut rng = SplitMix64 { state: 9 };
        for _ in 0..1000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }
}
