//! Offline shim for `crossbeam-channel`.
//!
//! A bounded MPMC channel built on `Mutex` + `Condvar`, exposing the
//! subset of the crossbeam-channel API the simulated-MPI fabric uses:
//! [`bounded`], cloneable [`Sender`] / [`Receiver`] that send and receive
//! through `&self`. The fabric holds both endpoints of every channel for
//! the whole run, so disconnect semantics (the part of crossbeam this
//! shim does not reproduce) are unreachable in-tree.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] (never produced by this shim while
/// both endpoints are alive — kept for API compatibility).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers dropped (unreachable while the fabric holds both
    /// endpoints — kept for API compatibility).
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// All senders dropped (unreachable while the fabric holds both
    /// endpoints — kept for API compatibility).
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv`] on a disconnected, empty channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    /// Signaled when an item is taken (senders blocked on a full queue).
    not_full: Condvar,
    /// Signaled when an item arrives (receivers blocked on empty).
    not_empty: Condvar,
}

/// Create a bounded channel with capacity `cap` (`cap >= 1`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "zero-capacity rendezvous channels are not supported by the shim");
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::with_capacity(cap)),
        cap,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// The sending half; cloneable and usable through `&self`.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue `value`.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        while q.len() >= self.chan.cap {
            q = self.chan.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        q.push_back(value);
        drop(q);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: enqueue `value` if there is room, otherwise
    /// return it in `TrySendError::Full` immediately.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut q = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.chan.cap {
            return Err(TrySendError::Full(value));
        }
        q.push_back(value);
        drop(q);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { chan: Arc::clone(&self.chan) }
    }
}

/// The receiving half; cloneable and usable through `&self`.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Block until an item is available and dequeue it.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            q = self.chan.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until an item is available or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .chan
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Non-blocking receive (None when currently empty).
    pub fn try_recv(&self) -> Option<T> {
        let mut q = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let v = q.pop_front();
        if v.is_some() {
            self.chan.not_full.notify_one();
        }
        v
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn capacity_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread receives the first item.
            tx.send(20).unwrap();
        });
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.recv(), Ok(20));
        t.join().unwrap();
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
    }

    #[test]
    fn recv_timeout_expires_on_empty_channel() {
        let (_tx, rx) = bounded::<i32>(1);
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn recv_timeout_returns_early_when_item_arrives() {
        let (tx, rx) = bounded(1);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (tx_a, rx_a) = bounded(1);
        let (tx_b, rx_b) = bounded(1);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx_a.send(i).unwrap();
                assert_eq!(rx_b.recv(), Ok(i * 2));
            }
        });
        for _ in 0..100 {
            let v: i32 = rx_a.recv().unwrap();
            tx_b.send(v * 2).unwrap();
        }
        t.join().unwrap();
    }
}
