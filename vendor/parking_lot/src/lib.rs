//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *subset* of the parking_lot API it actually
//! uses. Semantics match parking_lot where this workspace depends on them:
//! `lock()` returns the guard directly (poisoning is swallowed — a
//! panicked holder does not poison subsequent lockers).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose methods never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
