//! Offline shim for `crossbeam-deque`.
//!
//! Implements the `Worker` / `Stealer` / `Injector` API surface the
//! workspace's work-stealing pool uses, backed by `Mutex<VecDeque>`
//! instead of the lock-free Chase–Lev deque. Semantics are identical
//! (LIFO owner end, FIFO steal end); the shim trades peak contention
//! throughput for zero external dependencies. Critical sections are a
//! few pointer moves, so for the coarse leaf-block tasks this workspace
//! schedules the difference is noise next to the kernels.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt (mirrors crossbeam's enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

type Shared<T> = Arc<Mutex<VecDeque<T>>>;

fn locked<T>(q: &Shared<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The owner's end of a work-stealing deque. The owner pushes and pops
/// at the *back* (LIFO, cache-hot); thieves steal from the *front*
/// (FIFO, the oldest and largest-granularity work).
pub struct Worker<T> {
    queue: Shared<T>,
}

impl<T> Worker<T> {
    /// A LIFO worker (the flavor cilk-style schedulers use).
    pub fn new_lifo() -> Worker<T> {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// A FIFO worker (owner pops oldest first).
    pub fn new_fifo() -> Worker<T> {
        Self::new_lifo()
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_back()
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }

    /// A handle other threads use to steal from this deque's front.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// A thief's handle onto some worker's deque.
pub struct Stealer<T> {
    queue: Shared<T>,
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// A global FIFO injection queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Injector<T> {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1), "thief takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for s in &stealers {
                scope.spawn(|| {
                    while let Steal::Success(_) = s.steal() {
                        total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
