//! Offline shim for `rand_chacha`: a real ChaCha keystream generator
//! implementing the vendored `rand` traits.
//!
//! The block function is the genuine ChaCha quarter-round construction
//! (RFC 8439 layout), parameterized by round count: [`ChaCha8Rng`],
//! [`ChaCha12Rng`], [`ChaCha20Rng`]. Output does not bit-match upstream
//! `rand_chacha` (word-consumption order differs), but has the same
//! statistical quality and is deterministic per seed — which is all the
//! synthetic-molecule generators and simulators in-tree rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 input words -> 16 keystream words.
fn chacha_block(input: &[u32; 16], rounds: usize, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

/// A ChaCha keystream generator with `R` double…single rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Constants + 8 key words + 2 counter words + 2 nonce words.
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 = exhausted.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        chacha_block(&self.state, ROUNDS, &mut self.buffer);
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaChaRng { state, buffer: [0; 16], index: 16 }
    }
}

pub type ChaCha8Rng = ChaChaRng<8>;
pub type ChaCha12Rng = ChaChaRng<12>;
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rfc8439_chacha20_block_vector() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for (i, w) in input[4..12].iter_mut().enumerate() {
            let b = 4 * i as u32;
            *w = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
