//! Large-molecule run: a virus-capsid shell, the §V.F workload class.
//!
//! Generates a CMV-style hollow capsid (50k atoms by default; pass an
//! atom count as the first argument, e.g. 509640 for full CMV scale),
//! runs the hybrid driver on a simulated 12-node cluster, and checks the
//! error against the naive reference.
//!
//! ```sh
//! cargo run --release --example virus_capsid [n_atoms]
//! ```

use polaroct::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    println!("generating capsid with {n} atoms...");
    let mol = polaroct::molecule::synth::capsid("capsid", n, 0xCAF);
    let params = ApproxParams::default().with_math(MathMode::Approx);
    let sys = GbSystem::prepare(&mol, &params);
    println!(
        "surface: {} quadrature points ({:.1} per atom); one replica = {:.1} MB",
        sys.n_qpoints(),
        sys.n_qpoints() as f64 / n as f64,
        sys.memory_bytes() as f64 / (1 << 20) as f64
    );

    let cfg = DriverConfig::default();
    let machine = MachineSpec::lonestar4();

    // 144-core hybrid (12 nodes × 2 sockets × 6 threads) vs 12-core runs.
    for cores in [12usize, 144] {
        let hybrid = run_oct_hybrid(
            &sys,
            &params,
            &cfg,
            &ClusterSpec::new(machine, Placement::hybrid_per_socket(cores, &machine)),
        )
        .unwrap();
        let mpi = run_oct_mpi(
            &sys,
            &params,
            &cfg,
            &ClusterSpec::new(machine, Placement::distributed(cores)),
            WorkDivision::NodeNode,
        )
        .unwrap();
        println!(
            "{cores:>4} cores: OCT_MPI+CILK {:>9.3}s (comm {:.1}%) | OCT_MPI {:>9.3}s (comm {:.1}%)",
            hybrid.time,
            (hybrid.comm + hybrid.wait) / hybrid.time * 100.0,
            mpi.time,
            (mpi.comm + mpi.wait) / mpi.time * 100.0,
        );
    }

    // Error check vs naive — on a subsample if the capsid is huge.
    if n <= 80_000 {
        let naive = run_naive(&sys, &params, &cfg).unwrap();
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        println!(
            "E_pol = {:.4e} kcal/mol (naive {:.4e}); error {:+.4}%; octree speedup {:.0}x on 1 core",
            serial.energy_kcal,
            naive.energy_kcal,
            (serial.energy_kcal - naive.energy_kcal) / naive.energy_kcal * 100.0,
            naive.time / serial.time
        );
    } else {
        let serial = run_serial(&sys, &params, &cfg).unwrap();
        println!(
            "E_pol = {:.4e} kcal/mol (naive reference skipped at this size; run <= 80k atoms to check)",
            serial.energy_kcal
        );
    }
}
