//! Quickstart: compute the GB polarization energy of a small protein four
//! ways and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polaroct::prelude::*;

fn main() {
    // 1. Input: a 1,500-atom synthetic globular protein. Real molecules
    //    load via polaroct::molecule::io::{pqr, xyzrq}.
    let mol = polaroct::molecule::synth::protein("demo-protein", 1_500, 2026);
    println!("molecule: {} atoms, net charge {:+.3e}", mol.len(), mol.net_charge());

    // 2. Preprocessing (§IV.C step 1): sample the molecular surface and
    //    build the atoms + quadrature-point octrees. Reused by every run.
    let params = ApproxParams::default(); // ε_born = ε_epol = 0.9
    let sys = GbSystem::prepare(&mol, &params);
    println!(
        "prepared: {} quadrature points, atoms octree: {}",
        sys.n_qpoints(),
        sys.atoms.stats()
    );

    let cfg = DriverConfig::default();

    // 3. The naive exact reference (Eq. 2 + Eq. 4, quadratic).
    let naive = run_naive(&sys, &params, &cfg).unwrap();

    // 4. The octree approximation: serial, shared-memory (12 threads),
    //    and hybrid on a simulated 12-core node.
    let serial = run_serial(&sys, &params, &cfg).unwrap();
    let cilk = run_oct_cilk(&sys, &params, &cfg, 12).unwrap();
    let machine = MachineSpec::lonestar4();
    let hybrid = run_oct_hybrid(
        &sys,
        &params,
        &cfg,
        &ClusterSpec::new(machine, Placement::hybrid_per_socket(12, &machine)),
    )
    .unwrap();

    println!("\n{:<14} {:>16} {:>12} {:>10}", "driver", "E_pol (kcal/mol)", "sim time", "err vs naive");
    for r in [&naive, &serial, &cilk, &hybrid] {
        println!(
            "{:<14} {:>16.3} {:>11.3}ms {:>9.4}%",
            r.name,
            r.energy_kcal,
            r.time * 1e3,
            (r.energy_kcal - naive.energy_kcal) / naive.energy_kcal * 100.0
        );
    }
    println!(
        "\noctree speedup over naive (serial): {:.1}x; |error| < 1%: {}",
        naive.time / serial.time,
        ((serial.energy_kcal - naive.energy_kcal) / naive.energy_kcal).abs() < 0.01
    );
}
