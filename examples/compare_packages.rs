//! Run every package analog on one molecule (a one-row slice of Fig. 8/9).
//!
//! ```sh
//! cargo run --release --example compare_packages [n_atoms]
//! ```

use polaroct::baselines::{all_packages, PackageContext, PackageOutcome};
use polaroct::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3_000);
    let mol = polaroct::molecule::synth::protein("target", n, 13);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let machine = MachineSpec::lonestar4();
    let node12 = ClusterSpec::new(machine, Placement::distributed(12));

    let naive = run_naive(&sys, &params, &cfg).unwrap();
    let oct = run_oct_mpi(&sys, &params, &cfg, &node12, WorkDivision::NodeNode).unwrap();

    println!("molecule: {n} atoms; one 12-core node\n");
    println!(
        "{:<16} {:<12} {:>14} {:>10} {:>12}",
        "program", "GB model", "E_pol kcal/mol", "time", "vs naive"
    );
    let row = |name: &str, model: &str, e: f64, t: f64| {
        println!(
            "{:<16} {:<12} {:>14.2} {:>9.3}s {:>11.3}%",
            name,
            model,
            e,
            t,
            (e - naive.energy_kcal) / naive.energy_kcal * 100.0
        );
    };
    row("Naive (exact)", "STILL r6", naive.energy_kcal, naive.time);
    row("OCT_MPI", "STILL r6", oct.energy_kcal, oct.time);

    let ctx = PackageContext::new(node12);
    for pkg in all_packages() {
        match pkg.run(&mol, &ctx) {
            PackageOutcome::Ok(r) => row(pkg.name(), pkg.gb_model(), r.energy_kcal, r.time),
            PackageOutcome::OutOfMemory { required_bytes, node_bytes, .. } => println!(
                "{:<16} {:<12} {:>14} (needs {:.1} GB > {:.0} GB node)",
                pkg.name(),
                pkg.gb_model(),
                "OOM",
                required_bytes as f64 / (1u64 << 30) as f64,
                node_bytes as f64 / (1u64 << 30) as f64
            ),
        }
    }
    println!(
        "\nOCT_MPI speedup over Amber-class baseline comes from three levels of\nacceleration (§V.F): parallelism, two-level approximation, and the\ncache-friendly octree."
    );
}
