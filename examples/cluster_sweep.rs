//! Sweep process×thread placements on the simulated cluster.
//!
//! Shows how the same 144 cores behave under different P×p splits — the
//! design space between the paper's OCT_MPI (144×1) and OCT_MPI+CILK
//! (24×6), including layouts the paper did not try (e.g. 12×12).
//!
//! ```sh
//! cargo run --release --example cluster_sweep
//! ```

use polaroct::cluster::memory::MemoryModel;
use polaroct::prelude::*;

fn main() {
    let mol = polaroct::molecule::synth::capsid("capsid", 120_000, 3);
    let params = ApproxParams::default();
    let sys = GbSystem::prepare(&mol, &params);
    let cfg = DriverConfig::default();
    let machine = MachineSpec::lonestar4();
    let mm = MemoryModel::new(sys.memory_bytes());

    println!("{} atoms, {} q-points; replica = {:.1} MB", sys.n_atoms(), sys.n_qpoints(),
        sys.memory_bytes() as f64 / (1<<20) as f64);
    println!(
        "\n{:<10} {:>9} {:>9} {:>9} {:>12} {:>10}",
        "P x p", "time", "compute", "comm+wait", "GB/node", "energy"
    );

    let total_cores = 144usize;
    for threads in [1usize, 2, 3, 6, 12] {
        let processes = total_cores / threads;
        let placement = Placement::new(processes, threads);
        let cluster = ClusterSpec::new(machine, placement);
        let r = if threads == 1 {
            run_oct_mpi(&sys, &params, &cfg, &cluster, WorkDivision::NodeNode)
        } else {
            run_oct_hybrid(&sys, &params, &cfg, &cluster)
        }
        .unwrap();
        println!(
            "{:<10} {:>8.3}s {:>8.3}s {:>8.3}s {:>11.2} {:>10.3e}",
            format!("{processes}x{threads}"),
            r.time,
            r.compute,
            r.comm + r.wait,
            mm.bytes_per_node(&cluster) as f64 / (1u64 << 30) as f64,
            r.energy_kcal
        );
    }
    println!("\nNote: all placements compute the same energy (node-node work\ndivision is partition-invariant); they differ only in time and memory.");
}
