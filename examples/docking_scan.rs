//! Docking-style pose scan: the paper's motivating workload.
//!
//! §I: "Computing the polarization energy between a ligand (i.e., a small
//! molecule such as a drug molecule) and a receptor (e.g., a virus
//! molecule) is of utmost importance in drug design." §IV.C step 1: "for
//! drug-design and docking where we need to place the ligand at thousands
//! of different positions w.r.t. the receptor, we can move the same octree
//! to different positions or rotate it as needed".
//!
//! This example scans ligand poses around a receptor, recomputing E_pol
//! per pose and ranking the poses by binding polarization
//! ΔE = E(complex) − E(receptor) − E(ligand).
//!
//! ```sh
//! cargo run --release --example docking_scan
//! ```

use polaroct::geom::transform::Rotation;
use polaroct::geom::{Transform, Vec3};
use polaroct::prelude::*;

fn main() {
    let receptor = polaroct::molecule::synth::protein("receptor", 2_000, 7);
    let ligand = polaroct::molecule::synth::ligand("drug", 40, 9);
    let params = ApproxParams::default();
    let cfg = DriverConfig::default();

    // Reference energies of the separated partners.
    let e_receptor = energy(&receptor, &params, &cfg);
    let e_ligand = energy(&ligand, &params, &cfg);
    println!("receptor E_pol = {e_receptor:.2} kcal/mol, ligand E_pol = {e_ligand:.2} kcal/mol");

    // Scan poses on a sphere around the receptor, with rotations.
    let r_dock = receptor.bbox().circumradius() + 4.0;
    let center = receptor.centroid();
    let mut best: Option<(f64, usize)> = None;
    let n_poses = 24;
    println!("\n{:<6} {:>14} {:>12}", "pose", "E_complex", "ΔE_binding");
    for k in 0..n_poses {
        // Golden-angle placement + a pose-specific rotation: the rigid
        // transform machinery the paper's octree reuse relies on.
        let golden = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
        let z = 1.0 - 2.0 * (k as f64 + 0.5) / n_poses as f64;
        let rho = (1.0 - z * z).sqrt();
        let phi = golden * k as f64;
        let dir = Vec3::new(rho * phi.cos(), rho * phi.sin(), z);
        let pose = Transform::about_pivot(
            Rotation::from_euler_zyx(phi, z, 0.3 * k as f64),
            ligand.centroid(),
            center + dir * r_dock - ligand.centroid(),
        );

        let mut complex = receptor.clone();
        complex.extend_from(&ligand.transformed(&pose));
        complex.name = format!("pose-{k:02}");
        let e_complex = energy(&complex, &params, &cfg);
        let delta = e_complex - e_receptor - e_ligand;
        println!("{k:<6} {e_complex:>14.2} {delta:>12.3}");
        if best.map(|(b, _)| delta < b).unwrap_or(true) {
            best = Some((delta, k));
        }
    }
    let (delta, k) = best.unwrap();
    println!("\nbest pose: #{k} with binding polarization ΔE = {delta:.3} kcal/mol");
}

fn energy(mol: &polaroct::molecule::Molecule, params: &ApproxParams, cfg: &DriverConfig) -> f64 {
    let sys = GbSystem::prepare(mol, params);
    run_serial(&sys, params, cfg).unwrap().energy_kcal
}
