//! Rigid-body minimization of the GB polarization energy along a docking
//! coordinate — exercising the analytic force module.
//!
//! Pulls a ligand along the receptor-approach axis with steepest descent
//! on the *polarization* energy (fixed Born radii per step), the solvation
//! term an MD/docking engine would add to its force field. Demonstrates:
//! forces (`polaroct::core::forces`), octree clash detection, and octree
//! re-posing.
//!
//! ```sh
//! cargo run --release --example minimize
//! ```

use polaroct::core::forces::{forces_naive, forces_original_order};
use polaroct::core::naive::born_radii_naive;
use polaroct::geom::{Transform, Vec3};
use polaroct::prelude::*;

fn main() {
    let receptor = polaroct::molecule::synth::protein("receptor", 1_200, 11);
    let ligand = polaroct::molecule::synth::ligand("ligand", 35, 13);
    let params = ApproxParams::default();

    // Start the ligand just outside the receptor along +x.
    let start_gap = 6.0;
    let rx = receptor.bbox().circumradius();
    let start = receptor.centroid() + Vec3::new(rx + start_gap, 0.0, 0.0);
    let mut offset = start - ligand.centroid();

    println!("{:<6} {:>10} {:>14} {:>12}", "step", "gap (Å)", "E_pol", "|F_ligand|");
    let mut last_e = f64::INFINITY;
    for step in 0..20 {
        let posed = ligand.transformed(&Transform::translation(offset));
        // Clash guard via the octree intersection query.
        let rec_tree = polaroct::octree::build(&receptor.positions, Default::default());
        let lig_tree = polaroct::octree::build(&posed.positions, Default::default());
        let clashing = rec_tree.intersects_within(&lig_tree, 1.8);

        let mut complex = receptor.clone();
        complex.extend_from(&posed);
        let sys = GbSystem::prepare(&complex, &params);
        let (born, _) = born_radii_naive(&sys, MathMode::Exact);
        let raw = polaroct::core::naive::epol_naive_raw(&sys, &born, MathMode::Exact).0;
        let e = polaroct::core::gb::epol_from_raw_sum(raw, params.eps_solvent);

        let (f_sorted, _) = forces_naive(&sys, &born, params.eps_solvent, MathMode::Exact);
        let f = forces_original_order(&sys, &f_sorted);
        // Net polarization force on the ligand's rigid body.
        let mut f_lig = Vec3::ZERO;
        for fi in &f[receptor.len()..complex.len()] {
            f_lig += *fi;
        }

        let gap = (offset + ligand.centroid() - receptor.centroid()).norm() - rx;
        println!(
            "{:<6} {:>10.2} {:>14.3} {:>12.4}{}",
            step,
            gap,
            e,
            f_lig.norm(),
            if clashing { "  [clash]" } else { "" }
        );

        if clashing || (last_e - e).abs() < 1e-3 {
            println!("\nconverged/terminated at step {step}: E_pol = {e:.3} kcal/mol");
            break;
        }
        last_e = e;
        // Steepest descent on the rigid-body translation (step capped to
        // 0.5 Å so the quadratic region assumption holds).
        let g = f_lig;
        let step_len = (0.02 * g.norm()).min(0.5);
        if g.norm() > 1e-12 {
            offset += g.normalized() * step_len;
        } else {
            break;
        }
    }
}
